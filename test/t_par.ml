(* Qopt_par: the work-stealing deque, the domain pool, and the batch API.
   The load-bearing property is end-to-end determinism: a 4-domain batch
   must be indistinguishable (results and merged metrics) from a serial
   run over the same tasks. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module P = Qopt_par
module Obs = Qopt_obs

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

let deque_tests =
  [
    t "owner pop is LIFO" (fun () ->
        let d = P.Deque.create 8 in
        List.iter (P.Deque.push d) [ 1; 2; 3 ];
        Alcotest.(check (list (option int)))
          "pops"
          [ Some 3; Some 2; Some 1; None ]
          (List.init 4 (fun _ -> P.Deque.pop d)));
    t "steal is FIFO" (fun () ->
        let d = P.Deque.create 8 in
        List.iter (P.Deque.push d) [ 1; 2; 3 ];
        let steal () =
          match P.Deque.steal d with
          | P.Deque.Stolen v -> Some v
          | P.Deque.Empty | P.Deque.Retry -> None
        in
        Alcotest.(check (list (option int)))
          "steals"
          [ Some 1; Some 2; Some 3; None ]
          (List.init 4 (fun _ -> steal ())));
    t "capacity rounds up to a power of two" (fun () ->
        Alcotest.(check int) "min" 4 (P.Deque.capacity (P.Deque.create 0));
        Alcotest.(check int) "round" 8 (P.Deque.capacity (P.Deque.create 5));
        Alcotest.(check int) "exact" 8 (P.Deque.capacity (P.Deque.create 8)));
    t "push beyond capacity raises" (fun () ->
        let d = P.Deque.create 4 in
        List.iter (P.Deque.push d) [ 0; 1; 2; 3 ];
        Alcotest.check_raises "full"
          (Invalid_argument "Qopt_par.Deque.push: deque is full") (fun () ->
            P.Deque.push d 4));
    t "owner and thief drain 1000 tasks exactly once" (fun () ->
        let n = 1000 in
        let d = P.Deque.create n in
        for i = 0 to n - 1 do
          P.Deque.push d i
        done;
        (* All pushes precede the spawn, so a thief's Empty is final: the
           deque only shrinks from here on. *)
        let thief =
          Domain.spawn (fun () ->
              let rec loop acc =
                match P.Deque.steal d with
                | P.Deque.Stolen v -> loop (v :: acc)
                | P.Deque.Retry ->
                  Domain.cpu_relax ();
                  loop acc
                | P.Deque.Empty -> acc
              in
              loop [])
        in
        let rec drain acc =
          match P.Deque.pop d with
          | Some v -> drain (v :: acc)
          | None -> acc
        in
        let popped = drain [] in
        let stolen = Domain.join thief in
        (* Whatever the interleaving, the union is exactly 0..n-1. *)
        let all = List.sort compare (stolen @ popped) in
        Alcotest.(check (list int)) "all tasks once" (List.init n Fun.id) all);
  ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let pool_tests =
  [
    t "map_indexed preserves order at every domain count" (fun () ->
        List.iter
          (fun domains ->
            let r = P.Pool.map_indexed ~domains 100 (fun i -> i * i) in
            Alcotest.(check (list int))
              (Printf.sprintf "d%d" domains)
              (List.init 100 (fun i -> i * i))
              (Array.to_list r))
          [ 1; 2; 4; 16; 99 ]);
    t "empty and singleton inputs" (fun () ->
        Alcotest.(check int) "empty" 0
          (Array.length (P.Pool.map_indexed ~domains:4 0 (fun i -> i)));
        Alcotest.(check (list int))
          "one" [ 7 ]
          (Array.to_list (P.Pool.map_indexed ~domains:4 1 (fun _ -> 7))));
    t "lowest-index exception wins deterministically" (fun () ->
        let attempt () =
          try
            ignore
              (P.Pool.map_indexed ~domains:4 64 (fun i ->
                   if i = 13 then failwith "task 13"
                   else if i = 5 then failwith "task 5"
                   else i));
            "no exception"
          with Failure m -> m
        in
        for _ = 1 to 5 do
          Alcotest.(check string) "lowest index" "task 5" (attempt ())
        done);
    t "every task still runs when one fails" (fun () ->
        let ran = Array.make 32 false in
        (try
           ignore
             (P.Pool.map_indexed ~domains:4 32 (fun i ->
                  ran.(i) <- true;
                  if i = 0 then failwith "first"))
         with Failure _ -> ());
        Alcotest.(check bool) "all ran" true (Array.for_all Fun.id ran));
    t "nested pool calls run sequentially and correctly" (fun () ->
        let r =
          P.Pool.map_indexed ~domains:4 8 (fun i ->
              Array.fold_left ( + ) 0
                (P.Pool.map_indexed ~domains:4 4 (fun j -> (10 * i) + j)))
        in
        Alcotest.(check (list int))
          "nested sums"
          (List.init 8 (fun i -> (40 * i) + 6))
          (Array.to_list r));
  ]

(* ------------------------------------------------------------------ *)
(* Batch                                                               *)
(* ------------------------------------------------------------------ *)

let corpus env =
  List.concat_map
    (fun wl ->
      List.map
        (fun (q : W.Workload.query) -> q.W.Workload.block)
        (Qopt_experiments.Common.workload env wl).W.Workload.queries)
    [ "linear"; "star" ]

let tasks_of blocks =
  List.concat_map (fun b -> [ P.Batch.Compile b; P.Batch.Estimate b ]) blocks

let check_outcome_matches_serial env i outcome block =
  match outcome with
  | P.Batch.Compiled r ->
    let s = O.Optimizer.optimize env block in
    let ck what a b =
      if a <> b then Alcotest.failf "task %d: %s %d <> serial %d" i what a b
    in
    ck "joins" r.O.Optimizer.joins s.O.Optimizer.joins;
    ck "kept" r.O.Optimizer.kept s.O.Optimizer.kept;
    ck "entries" r.O.Optimizer.entries s.O.Optimizer.entries;
    ck "nljn" r.O.Optimizer.generated.O.Memo.nljn
      s.O.Optimizer.generated.O.Memo.nljn;
    ck "mgjn" r.O.Optimizer.generated.O.Memo.mgjn
      s.O.Optimizer.generated.O.Memo.mgjn;
    ck "hsjn" r.O.Optimizer.generated.O.Memo.hsjn
      s.O.Optimizer.generated.O.Memo.hsjn;
    (match (r.O.Optimizer.best, s.O.Optimizer.best) with
    | Some a, Some b ->
      if a.O.Plan.cost <> b.O.Plan.cost then
        Alcotest.failf "task %d: cost %f <> serial %f" i a.O.Plan.cost
          b.O.Plan.cost
    | None, None -> ()
    | Some _, None | None, Some _ -> Alcotest.failf "task %d: best mismatch" i)
  | P.Batch.Estimated e ->
    let s = Cote.Estimator.estimate env block in
    if
      (e.Cote.Estimator.joins, e.Cote.Estimator.nljn, e.Cote.Estimator.mgjn,
       e.Cote.Estimator.hsjn, e.Cote.Estimator.entries)
      <> (s.Cote.Estimator.joins, s.Cote.Estimator.nljn, s.Cote.Estimator.mgjn,
          s.Cote.Estimator.hsjn, s.Cote.Estimator.entries)
    then Alcotest.failf "task %d: estimate fields differ from serial" i

let batch_tests =
  [
    t "4-domain batch is byte-identical to 1-domain (serial env)" (fun () ->
        let tasks = tasks_of (corpus O.Env.serial) in
        let f d =
          P.Batch.fingerprint (P.Batch.run_batch ~domains:d O.Env.serial tasks)
        in
        Alcotest.(check string) "fingerprints" (f 1) (f 4));
    t "4-domain batch is byte-identical to 1-domain (parallel env)" (fun () ->
        let env = O.Env.parallel ~nodes:4 in
        let tasks = tasks_of (corpus env) in
        let f d = P.Batch.fingerprint (P.Batch.run_batch ~domains:d env tasks) in
        Alcotest.(check string) "fingerprints" (f 1) (f 4));
    t "batch outcomes equal direct serial calls, field by field" (fun () ->
        let env = O.Env.serial in
        let blocks = corpus env in
        let tasks = tasks_of blocks in
        let outcomes = P.Batch.run_batch ~domains:4 env tasks in
        List.iteri
          (fun i (task, outcome) ->
            let block =
              match task with P.Batch.Compile b | P.Batch.Estimate b -> b
            in
            check_outcome_matches_serial env i outcome block)
          (List.combine tasks outcomes));
    t "merged obs counters equal a serial run's" (fun () ->
        let env = O.Env.serial in
        let tasks = tasks_of (corpus env) in
        let names =
          [
            "enumerator.joins_feasible"; "plan_gen.plans.nljn";
            "plan_gen.plans.mgjn"; "plan_gen.plans.hsjn"; "plan_gen.plans.scan";
            "memo.entries"; "optimizer.queries"; "estimator.runs";
          ]
        in
        let reg = Obs.Registry.default in
        let deltas domains =
          let before =
            List.map (fun n -> Obs.Registry.counter_value reg n) names
          in
          Obs.Control.with_enabled true (fun () ->
              ignore (P.Batch.run_batch ~domains env tasks));
          List.map2
            (fun n b -> Obs.Registry.counter_value reg n - b)
            names before
        in
        let serial_d = deltas 1 in
        let par_d = deltas 4 in
        List.iteri
          (fun i n ->
            Alcotest.(check int)
              (Printf.sprintf "counter %s" n)
              (List.nth serial_d i) (List.nth par_d i))
          names);
    t "map: per-task rng depends only on (seed, index)" (fun () ->
        let items = List.init 64 Fun.id in
        let draw ~rng:r i = (i, Qopt_util.Rng.int r 1_000_000) in
        let d1 = P.Batch.map ~domains:1 ~seed:42 draw items in
        let d4 = P.Batch.map ~domains:4 ~seed:42 draw items in
        let d4' = P.Batch.map ~domains:4 ~seed:42 draw items in
        Alcotest.(check (list (pair int int))) "1 vs 4 domains" d1 d4;
        Alcotest.(check (list (pair int int))) "repeatable" d4 d4';
        let other = P.Batch.map ~domains:4 ~seed:43 draw items in
        Alcotest.(check bool) "seed matters" false (d1 = other));
    t "default_domains reads QOPT_DOMAINS" (fun () ->
        (* Only observable without mutating the environment: the parse
           itself is covered by construction; check the clamp contract. *)
        let d = P.Batch.default_domains () in
        Alcotest.(check bool) "within bounds" true
          (d >= 1 && d <= P.Pool.max_domains));
    t "shared Stmt_cache survives a 4-domain stress run" (fun () ->
        let env = O.Env.serial in
        let blocks = corpus env in
        let cache = Cote.Stmt_cache.create ~shared:true () in
        let n_items = 200 in
        let results =
          P.Batch.map ~domains:4
            (fun ~rng:_ i ->
              let block = List.nth blocks (i mod List.length blocks) in
              match Cote.Stmt_cache.lookup cache block with
              | Some _ -> 1
              | None ->
                Cote.Stmt_cache.record cache block 0.1;
                0)
            (List.init n_items Fun.id)
        in
        Alcotest.(check int) "every lookup accounted" n_items
          (Cote.Stmt_cache.hits cache + Cote.Stmt_cache.misses cache);
        Alcotest.(check int) "results arrived" n_items (List.length results);
        Alcotest.(check bool) "cache holds every distinct signature" true
          (Cote.Stmt_cache.size cache <= List.length blocks
          && Cote.Stmt_cache.size cache > 0));
  ]

let suite = deque_tests @ pool_tests @ batch_tests
