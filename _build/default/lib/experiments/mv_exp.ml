(** Experiment [mv]: optimization with materialized views (Section 6.2).

    "In either case, we need to take into consideration the time spent on
    matching materialized views."  The reused enumerator tells the COTE
    exactly how many view-matching tests optimization will perform (MEMO
    entries x registered views), so the extension is one more linear term:
    [T += C_mv x tests], with [C_mv] calibrated like the plan coefficients.

    Shape: plan counts stay roughly unchanged (the paper's argument that
    cost-based view selection doesn't blow up optimization), matching time
    adds a measurable overhead, and the extended model tracks the new total
    where the unextended model now underestimates. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

(* One two-table join view per foreign key — the kind of candidate set a
   view advisor materializes — plus a few wider hand-written views. *)
let fkey_views schema =
  List.filteri (fun i _ -> i < 40)
    (List.map
       (fun (fk : Qopt_catalog.Fkey.t) ->
         let name =
           Printf.sprintf "mv_%s_%s" fk.Qopt_catalog.Fkey.from_table
             fk.Qopt_catalog.Fkey.to_table
         in
         let sql =
           Printf.sprintf "SELECT COUNT(*) FROM %s, %s WHERE %s.%s = %s.%s"
             fk.Qopt_catalog.Fkey.from_table fk.Qopt_catalog.Fkey.to_table
             fk.Qopt_catalog.Fkey.from_table
             (List.hd fk.Qopt_catalog.Fkey.from_cols)
             fk.Qopt_catalog.Fkey.to_table
             (List.hd fk.Qopt_catalog.Fkey.to_cols)
         in
         O.Mat_view.define ~name (Qopt_sql.Binder.parse_and_bind ~name schema sql))
       (Qopt_catalog.Schema.fkeys schema))

let views schema =
  let v name sql =
    O.Mat_view.define ~name (Qopt_sql.Binder.parse_and_bind ~name schema sql)
  in
  fkey_views schema
  @ [
    v "mv_sales_by_day"
      "SELECT ss.ss_item_sk FROM store_sales ss, date_dim d WHERE \
       ss.ss_sold_date_sk = d.d_date_sk";
    v "mv_sales_store_item"
      "SELECT s.s_state FROM store_sales ss, store s, item i WHERE \
       ss.ss_store_sk = s.s_store_sk AND ss.ss_item_sk = i.i_item_sk";
    v "mv_cust_addr"
      "SELECT ca.ca_state FROM customer c, customer_address ca WHERE \
       c.c_current_addr_sk = ca.ca_address_sk";
    v "mv_returns_reason"
      "SELECT r.r_reason_desc FROM store_returns sr, reason r WHERE \
       sr.sr_reason_sk = r.r_reason_sk";
    v "mv_inventory_wh"
      "SELECT w.w_state FROM inventory inv, warehouse w WHERE \
       inv.inv_warehouse_sk = w.w_warehouse_sk";
  ]

let run () =
  let env = Common.serial in
  let wl = Common.workload env "real1" in
  let views = views wl.W.Workload.schema in
  Format.printf "registered %d candidate views@." (List.length views);
  let model = Common.model_for env in
  (* Calibrate the per-test matching coefficient on the real2-only queries
     (disjoint from the evaluation set below). *)
  let c_mv =
    let training =
      List.filter
        (fun (q : W.Workload.query) ->
          not (String.length q.W.Workload.q_name >= 5
              && String.sub q.W.Workload.q_name 0 5 = "r2_r1"))
        (Common.workload env "real2").W.Workload.queries
    in
    let time = ref 0.0 and tests = ref 0 in
    List.iter
      (fun (q : W.Workload.query) ->
        let r = O.Optimizer.optimize env ~views q.W.Workload.block in
        time := !time +. r.O.Optimizer.breakdown.O.Instrument.s_mv;
        tests := !tests + r.O.Optimizer.mv_tests)
      training;
    if !tests = 0 then 0.0 else !time /. float_of_int !tests
  in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "mv: optimization with a view-advisor candidate set (C_mv = %.3f us/test)"
           (c_mv *. 1e6))
      [
        ("query", Tablefmt.Left);
        ("t no views", Tablefmt.Right);
        ("t with views", Tablefmt.Right);
        ("matches", Tablefmt.Right);
        ("plans ratio", Tablefmt.Right);
        ("ext est", Tablefmt.Right);
        ("ext err", Tablefmt.Right);
        ("base err", Tablefmt.Right);
      ]
  in
  let ext_pairs = ref [] and base_pairs = ref [] and ratios = ref [] in
  List.iter
    (fun (q : W.Workload.query) ->
      let plain = O.Optimizer.optimize env q.W.Workload.block in
      let with_mv = O.Optimizer.optimize env ~views q.W.Workload.block in
      let est = Cote.Estimator.estimate ~views env q.W.Workload.block in
      let base_pred = Cote.Time_model.predict model est in
      let ext_pred = base_pred +. (c_mv *. float_of_int est.Cote.Estimator.mv_tests) in
      let actual = with_mv.O.Optimizer.elapsed in
      let ratio =
        float_of_int (O.Memo.counts_total with_mv.O.Optimizer.generated)
        /. Float.max 1.0 (float_of_int (O.Memo.counts_total plain.O.Optimizer.generated))
      in
      ratios := ratio :: !ratios;
      ext_pairs := (actual, ext_pred) :: !ext_pairs;
      base_pairs := (actual, base_pred) :: !base_pairs;
      Tablefmt.add_row t
        [
          q.W.Workload.q_name;
          Tablefmt.fseconds plain.O.Optimizer.elapsed;
          Tablefmt.fseconds actual;
          string_of_int with_mv.O.Optimizer.mv_matches;
          Printf.sprintf "%.2f" ratio;
          Tablefmt.fseconds ext_pred;
          Tablefmt.fpct (Stats.pct_error ~actual ~estimate:ext_pred);
          Tablefmt.fpct (Stats.pct_error ~actual ~estimate:base_pred);
        ])
    wl.W.Workload.queries;
  Tablefmt.print t;
  Format.printf
    "plan-count ratio with/without views: mean %.2f (paper: 'roughly the \
     same amount of time'); extended model: %s; unextended model: %s@.@."
    (Stats.mean !ratios)
    (Common.err_summary !ext_pairs)
    (Common.err_summary !base_pairs)
