(* Reference MEMO: the pre-interning list-based plan storage and property
   signatures, kept verbatim (minus metrics) as the differential-testing
   oracle for the array-backed, id-interned Memo.  Every plan insertion
   recomputes the canonical order/partition lists structurally and rebuilds
   the kept-plan list with [List.partition]; [best_plan] /
   [best_pipelinable_plan] / [best_plan_satisfying] rescan the whole list —
   exactly the semantics (including tie-breaks: the kept list is
   newest-first, and every best-scan keeps the newest plan among the
   minimum-cost candidates) that the flattened Memo must reproduce
   bit-for-bit. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset
module Query_block = O.Query_block
module Pred = O.Pred
module Equiv = O.Equiv
module Cardinality = O.Cardinality
module Interesting = O.Interesting
module Order_prop = O.Order_prop
module Partition_prop = O.Partition_prop
module Colref = O.Colref
module Plan = O.Plan

(* Generation counts are shared with the real Memo so differential tests
   compare them directly. *)
type counts = O.Memo.counts = {
  mutable nljn : int;
  mutable mgjn : int;
  mutable hsjn : int;
}

let counts_zero = O.Memo.counts_zero

let counts_add = O.Memo.counts_add

type saved_plan = {
  sp_plan : Plan.t;
  sp_osig : int;
  sp_pkey : Colref.t list option;
  sp_pint : bool;
  sp_pipe : bool;
}

type entry = {
  tables : Bitset.t;
  mutable saved : saved_plan list;
  mutable card_cache : float option;
  mutable equiv_cache : Equiv.t option;
  mutable app_orders_cache : Order_prop.t list option;
  mutable app_canon_cache : (Order_prop.kind * Colref.t list) list option;
}

type stats = {
  mutable entries_created : int;
  mutable joins_enumerated : int;
  generated : counts;
  mutable scan_plans : int;
  mutable pruned : int;
}

type t = {
  blk : Query_block.t;
  tbl : (int, entry) Hashtbl.t;
  mutable by_size : entry list array; (* newest-first per size *)
  sts : stats;
}

let create blk =
  let n = Query_block.n_quantifiers blk in
  {
    blk;
    tbl = Hashtbl.create 256;
    by_size = Array.make (n + 1) [];
    sts =
      {
        entries_created = 0;
        joins_enumerated = 0;
        generated = counts_zero ();
        scan_plans = 0;
        pruned = 0;
      };
  }

let block t = t.blk

let stats t = t.sts

let find_opt t set = Hashtbl.find_opt t.tbl (Bitset.to_int set)

let find_or_create t set =
  match find_opt t set with
  | Some e -> (e, false)
  | None ->
    let e =
      {
        tables = set;
        saved = [];
        card_cache = None;
        equiv_cache = None;
        app_orders_cache = None;
        app_canon_cache = None;
      }
    in
    Hashtbl.add t.tbl (Bitset.to_int set) e;
    let k = Bitset.cardinal set in
    t.by_size.(k) <- e :: t.by_size.(k);
    t.sts.entries_created <- t.sts.entries_created + 1;
    (e, true)

let entries_of_size t k =
  if k < 0 || k >= Array.length t.by_size then []
  else List.rev t.by_size.(k)

let iter_entries f t = Hashtbl.iter (fun _ e -> f e) t.tbl

let n_entries t = Hashtbl.length t.tbl

let equiv_of t e =
  match e.equiv_cache with
  | Some eq -> eq
  | None ->
    let preds =
      List.filter
        (fun p -> Pred.is_join p && Pred.applicable_within p e.tables)
        t.blk.Query_block.preds
    in
    let eq = Equiv.of_preds preds in
    e.equiv_cache <- Some eq;
    eq

let card_of t mode e =
  match e.card_cache with
  | Some c -> c
  | None ->
    let c = Cardinality.of_set mode t.blk e.tables in
    e.card_cache <- Some c;
    c

let applicable_orders t e =
  match e.app_orders_cache with
  | Some l -> l
  | None ->
    let equiv = equiv_of t e in
    let l =
      Bitset.fold
        (fun q acc ->
          List.fold_left
            (fun acc o ->
              if Interesting.order_retired t.blk equiv ~tables:e.tables o then acc
              else Order_prop.insert_dedup equiv o acc)
            acc
            (Interesting.orders_for_table t.blk q))
        e.tables []
    in
    e.app_orders_cache <- Some l;
    l

let applicable_canon t e =
  match e.app_canon_cache with
  | Some l -> l
  | None ->
    let equiv = equiv_of t e in
    let l =
      List.map
        (fun (o : Order_prop.t) ->
          (o.Order_prop.kind, Order_prop.canonical equiv o))
        (applicable_orders t e)
    in
    e.app_canon_cache <- Some l;
    l

let rec is_prefix want have =
  match (want, have) with
  | [], _ -> true
  | _ :: _, [] -> false
  | w :: want', h :: have' -> Colref.equal w h && is_prefix want' have'

let canon_satisfied kind cols normalized_plan_order =
  match kind with
  | Order_prop.Join_key | Order_prop.Ordering -> is_prefix cols normalized_plan_order
  | Order_prop.Grouping ->
    let k = List.length cols in
    if List.length normalized_plan_order < k then false
    else
      let prefix = List.filteri (fun i _ -> i < k) normalized_plan_order in
      Colref.list_equal (List.sort Colref.compare prefix) cols

let plans e = List.map (fun sp -> sp.sp_plan) e.saved

let best_plan e =
  match e.saved with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best sp ->
           if sp.sp_plan.Plan.cost < best.Plan.cost then sp.sp_plan else best)
         first.sp_plan rest)

let best_pipelinable_plan e =
  List.fold_left
    (fun best sp ->
      if not (Plan.pipelinable sp.sp_plan) then best
      else
        match best with
        | Some (b : Plan.t) when b.Plan.cost <= sp.sp_plan.Plan.cost -> best
        | Some _ | None -> Some sp.sp_plan)
    None e.saved

let best_plan_satisfying t e order =
  let equiv = equiv_of t e in
  let best = ref None in
  List.iter
    (fun sp ->
      if Order_prop.satisfied_by equiv order sp.sp_plan.Plan.order then
        match !best with
        | Some (b : Plan.t) when b.Plan.cost <= sp.sp_plan.Plan.cost -> ()
        | Some _ | None -> best := Some sp.sp_plan)
    e.saved;
  !best

let signature t e (plan : Plan.t) =
  let equiv = equiv_of t e in
  let normalized = Equiv.normalize_cols equiv plan.Plan.order in
  let osig = ref 0 in
  List.iteri
    (fun i (kind, cols) ->
      if canon_satisfied kind cols normalized then osig := !osig lor (1 lsl i))
    (applicable_canon t e);
  let sp_pkey, sp_pint =
    match plan.Plan.partition with
    | None -> (None, false)
    | Some p ->
      ( Some (Partition_prop.canonical equiv p),
        Interesting.partition_interesting t.blk equiv ~tables:e.tables p )
  in
  let sp_pipe =
    t.blk.Query_block.first_n <> None && Plan.pipelinable plan
  in
  { sp_plan = plan; sp_osig = !osig; sp_pkey; sp_pint; sp_pipe }

let dominates a b =
  a.sp_plan.Plan.cost <= b.sp_plan.Plan.cost
  && a.sp_osig land b.sp_osig = b.sp_osig
  && (a.sp_pipe || not b.sp_pipe)
  &&
  match (a.sp_pkey, b.sp_pkey) with
  | None, None -> true
  | Some ka, Some kb ->
    if a.sp_pint || b.sp_pint then Colref.list_equal ka kb else true
  | Some _, None | None, Some _ -> false

let insert_plan t e plan =
  let sp = signature t e plan in
  if List.exists (fun kept -> dominates kept sp) e.saved then begin
    t.sts.pruned <- t.sts.pruned + 1
  end
  else begin
    let survivors, dropped =
      List.partition (fun kept -> not (dominates sp kept)) e.saved
    in
    t.sts.pruned <- t.sts.pruned + List.length dropped;
    e.saved <- sp :: survivors
  end

let kept_plans t =
  let n = ref 0 in
  iter_entries (fun e -> n := !n + List.length e.saved) t;
  !n

let memo_bytes t = float_of_int (kept_plans t) *. Plan.approx_bytes
