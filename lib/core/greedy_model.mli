(** COTE for the greedy regime: a fitted time model for the spanning-tree
    fallback ({!Qopt_optimizer.Optimizer.optimize_fallback}).

    The DP time model ({!Time_model}) predicts from estimated generated
    plan counts — features that only exist for the DP enumerator.  The
    fallback never builds a MEMO, but its work is a simple deterministic
    function of the join graph: one sweep sorts the edges and costs six
    joins per accepted edge, the scan pass is linear in quantifiers, and
    every randomized restart repeats the sweep.  So its model is linear in
    (quantifier count, edge count, restart count) — all three known {e
    before} compiling, from the query block alone, making the greedy
    prediction effectively free.  Regime selection ({!Regime}) compares
    this prediction with the DP prediction against the deadline. *)

module O = Qopt_optimizer

type t = {
  g_quant : float;  (** seconds per quantifier (scan planning) *)
  g_edge : float;  (** seconds per join-graph edge (sweep + costing) *)
  g_restart : float;  (** seconds per randomized restart *)
}

val make : g_quant:float -> g_edge:float -> g_restart:float -> unit -> t

val default : t
(** Coefficients fitted on the giant workload in the reference environment;
    re-fit with {!calibrate} elsewhere, exactly like the DP model. *)

val predict : t -> quantifiers:int -> edges:int -> restarts:int -> float
(** Predicted fallback compile seconds. *)

val predict_fallback : t -> O.Optimizer.fallback -> float
(** {!predict} over a completed fallback's recorded features — used to
    score the model's own accuracy after the fact. *)

type observation = {
  gob_quant : float;
  gob_edges : float;
  gob_restarts : float;
  gob_seconds : float;  (** measured fallback wall-clock seconds *)
}

val measure :
  ?seed:int ->
  ?restarts:int ->
  ?repeats:int ->
  O.Env.t ->
  O.Query_block.t ->
  observation
(** Run the fallback for real ([repeats] times, default 3, median timing)
    and package the observation. *)

val fit : observation list -> t
(** Non-negative least squares, mirroring {!Calibrate.fit}.  Raises
    [Invalid_argument] on an empty list. *)

val calibrate :
  ?seed:int ->
  ?repeats:int ->
  O.Env.t ->
  (O.Query_block.t * int) list ->
  t
(** [measure] every [(block, restarts)] training pair, then {!fit}. *)

val pp : Format.formatter -> t -> unit
