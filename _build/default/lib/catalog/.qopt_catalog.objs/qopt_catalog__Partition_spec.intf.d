lib/catalog/partition_spec.mli: Format
