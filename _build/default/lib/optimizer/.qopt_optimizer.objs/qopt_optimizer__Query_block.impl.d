lib/optimizer/query_block.ml: Array Colref Format List Pred Printf Qopt_catalog Qopt_util Quantifier
