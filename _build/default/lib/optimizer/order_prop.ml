module Bitset = Qopt_util.Bitset

type kind =
  | Join_key
  | Grouping
  | Ordering

type t = {
  cols : Colref.t list;
  kind : kind;
}

type physical = Colref.t list

let make kind cols =
  if cols = [] then invalid_arg "Order_prop.make: empty column list";
  { cols; kind }

let canonical equiv t =
  let cols = Equiv.normalize_cols equiv t.cols in
  match t.kind with
  | Grouping -> List.sort Colref.compare cols
  | Join_key | Ordering -> cols

let equal_under equiv a b =
  Colref.list_equal (canonical equiv a) (canonical equiv b)

let applicable ~tables t =
  List.for_all (fun (c : Colref.t) -> Bitset.mem c.Colref.q tables) t.cols

let is_prefix equiv short long =
  let rec loop s l =
    match (s, l) with
    | [], _ -> true
    | _ :: _, [] -> false
    | a :: s', b :: l' -> Equiv.same equiv a b && loop s' l'
  in
  loop short long

let satisfied_by equiv t physical =
  let phys = Equiv.normalize_cols equiv physical in
  match t.kind with
  | Join_key | Ordering -> is_prefix equiv (Equiv.normalize_cols equiv t.cols) phys
  | Grouping ->
    let want = canonical equiv t in
    let k = List.length want in
    if List.length phys < k then false
    else begin
      let prefix = List.filteri (fun i _ -> i < k) phys in
      Colref.list_equal (List.sort Colref.compare prefix) want
    end

let subset equiv a b =
  List.for_all (fun x -> List.exists (fun y -> Equiv.same equiv x y) b) a

let covers equiv ~base ~candidate =
  let bcols = Equiv.normalize_cols equiv base.cols in
  let ccols = Equiv.normalize_cols equiv candidate.cols in
  match candidate.kind with
  | Grouping -> subset equiv bcols ccols
  | Join_key | Ordering -> is_prefix equiv bcols ccols

let kind_rank = function Join_key -> 0 | Grouping -> 1 | Ordering -> 2

let insert_dedup equiv t list =
  let rec loop acc = function
    | [] -> List.rev (t :: acc)
    | x :: rest ->
      if equal_under equiv x t then
        (* Keep the stronger kind: Grouping/Ordering survive retirement. *)
        let keep = if kind_rank x.kind >= kind_rank t.kind then x else t in
        List.rev_append acc (keep :: rest)
      else loop (x :: acc) rest
  in
  loop [] list

let pp_kind ppf = function
  | Join_key -> Format.pp_print_string ppf "jk"
  | Grouping -> Format.pp_print_string ppf "gb"
  | Ordering -> Format.pp_print_string ppf "ob"

let pp ppf t =
  Format.fprintf ppf "%a(%s)" pp_kind t.kind
    (String.concat "," (List.map (Format.asprintf "%a" Colref.pp) t.cols))

let pp_physical ppf p =
  match p with
  | [] -> Format.pp_print_string ppf "DC"
  | _ ->
    Format.pp_print_string ppf
      (String.concat "," (List.map (Format.asprintf "%a" Colref.pp) p))
