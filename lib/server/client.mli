(** Blocking client for the compile service.

    One connection, one thread of control.  Requests may be pipelined:
    [send] writes without waiting, [recv] returns the next reply off the
    wire, and [request] waits for the reply whose [id] matches —
    buffering any out-of-order replies (SJF reorders completions) for
    later [recv]/[request] calls.

    The client owns its reconnection: a send onto a connection the
    server has closed (EPIPE, reset) redials the stored address — with
    the same exponential backoff schedule as [connect] — and resends
    once.  Replies that were in flight on the dead connection are lost;
    the caller observes that as [None] / [Closed], never a raised
    exception from deep inside a read. *)

type t

type outcome =
  | Reply of Proto.reply
  | Timeout  (** deadline passed; the connection was dropped *)
  | Closed  (** peer closed or reset mid-wait; the connection was dropped *)

val connect : ?attempts:int -> ?backoff_s:float -> Server.addr -> t
(** Dial, retrying connect-refused/not-yet-bound failures up to
    [attempts] times (default 1 — fail fast) with exponential backoff
    starting at [backoff_s] (default 20ms, capped at 1s).  The settings
    are remembered for implicit redials.  Raises [Unix.Unix_error] once
    the attempts are exhausted. *)

val send : t -> Proto.request -> unit
(** Write one request.  A dead connection is redialed (with the
    connect-time backoff schedule) and the request resent once; a second
    failure raises. *)

val recv : t -> Proto.reply option
(** Next reply: a buffered one if any, else read from the socket.
    [None] on EOF or a read error — the connection is dropped (a later
    [send] redials), never half-usable. *)

val request : t -> Proto.request -> Proto.reply option
(** [send] then read until the reply matching the request's [id]
    arrives; replies to other ids are buffered in arrival order. *)

val request_timeout :
  ?timeout_s:float -> t -> Proto.request -> outcome
(** [request] with a wall-clock budget (default 5s) over the whole wait,
    shared across any out-of-order replies buffered on the way.  On
    [Timeout] or [Closed] the connection is dropped: a timeout can tear
    a frame in the channel buffer, and a late reply on a kept socket
    would desync every later exchange. *)

val fresh_id : t -> int
(** Monotonically increasing per-connection request ids, from 1. *)

val close : t -> unit
