(* The qopt command-line interface.

   Subcommands:
     optimize   — compile a query (from a workload, or ad-hoc SQL over a
                  named schema) and show the plan and counters
     estimate   — run the COTE on the same query and show the prediction
     breakdown  — Figure 2-style time breakdown for one query
     batch      — compile/estimate whole workloads across a domain pool
     calibrate  — fit and print the time model for an environment
     experiment — run registered experiments by id
     list       — list workloads, their queries, and experiment ids
     serve      — run the compile-service daemon (COTE-driven admission,
                  SJF scheduling, level downgrades) on a socket
     fleet      — spawn N backend servers and route compiles across them
                  (estimate-aware tiering, template affinity, failover)
     client     — send one request to a running server and print the reply
     loadgen    — drive a server with a mixed workload and report latency
                  percentiles and outcome counts *)

module O = Qopt_optimizer
module W = Qopt_workloads
module E = Qopt_experiments
module Obs = Qopt_obs
module F = Qopt_fleet
open Cmdliner

let env_of_string = function
  | "serial" -> Ok O.Env.serial
  | "parallel" -> Ok (O.Env.parallel ~nodes:4)
  | s -> Error (`Msg (Printf.sprintf "unknown environment %S (serial|parallel)" s))

let env_conv =
  Arg.conv
    ( (fun s -> env_of_string s),
      fun ppf env -> O.Env.pp ppf env )

let env_term =
  Arg.(value & opt env_conv O.Env.serial & info [ "e"; "env" ] ~doc:"serial or parallel")

let workload_names =
  [
    "linear"; "star"; "cycle"; "real1"; "real2"; "random"; "tpch";
    "calibration"; "giant";
  ]

let schema_for env = function
  | "tpch" -> W.Tpch.schema ~partitioned:(O.Env.is_parallel env)
  | "warehouse" | "real1" | "real2" | "random" ->
    W.Warehouse.schema ~partitioned:(O.Env.is_parallel env)
  | "giant" -> W.Giant.schema ~partitioned:(O.Env.is_parallel env) ()
  | s -> failwith (Printf.sprintf "unknown schema %S (tpch|warehouse|giant)" s)

let resolve_block env ~workload ~query ~sql ~schema =
  match (sql, workload, query) with
  | Some text, _, _ ->
    let schema = schema_for env (Option.value ~default:"warehouse" schema) in
    Qopt_sql.Binder.parse_and_bind ~name:"adhoc" schema text
  | None, Some w, Some q ->
    (W.Workload.find (E.Common.workload env w) q).W.Workload.block
  | None, _, _ ->
    failwith "provide either --sql, or --workload and --query (see `qopt list`)"

let workload_term =
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")

let query_term =
  Arg.(value & opt (some string) None & info [ "q"; "query" ] ~doc:"query name")

let sql_term =
  Arg.(value & opt (some string) None & info [ "sql" ] ~doc:"ad-hoc SQL text")

let schema_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "schema" ]
        ~doc:"schema for --sql: warehouse (default), tpch or giant")

let wrap f = try `Ok (f ()) with Failure msg | Invalid_argument msg -> `Error (false, msg)

(* --metrics[=json]: enable Qopt_obs collection around the run and dump the
   default registry afterwards. *)
let metrics_term =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:"Collect optimizer metrics and dump the registry after the run \
              (text or json)")

let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some fmt ->
    if fmt <> "text" && fmt <> "json" then
      failwith (Printf.sprintf "unknown metrics format %S (text|json)" fmt);
    Obs.Control.set_enabled true;
    let finish () =
      Obs.Control.set_enabled false;
      match fmt with
      | "json" -> print_endline (Obs.Registry.to_json Obs.Registry.default)
      | _ -> Obs.Registry.pp_text Format.std_formatter Obs.Registry.default
    in
    Fun.protect ~finally:finish f

let optimize_cmd =
  let run env workload query sql schema metrics =
    wrap (fun () ->
      with_metrics metrics (fun () ->
        let block = resolve_block env ~workload ~query ~sql ~schema in
        let cache = Cote.Stmt_cache.create () in
        ignore (Cote.Stmt_cache.lookup cache block);
        let r = O.Optimizer.optimize env block in
        (* Under --metrics, run the complete production pipeline so the
           dump covers the COTE and cache metrics too: estimate alongside
           the compile, then record the observed time. *)
        if metrics <> None then begin
          ignore (Cote.Estimator.estimate env block);
          Cote.Stmt_cache.record cache block r.O.Optimizer.elapsed
        end;
        Format.printf "query: %a@." O.Query_block.pp block;
        (match r.O.Optimizer.best with
        | None -> Format.printf "no plan found@."
        | Some p ->
          Format.printf "best plan: %a@.  cost=%.1f card=%.1f@." O.Plan.pp_compact
            p p.O.Plan.cost p.O.Plan.card);
        Format.printf
          "compile time %.4fs; joins %d; generated plans NLJN=%d MGJN=%d \
           HSJN=%d; kept %d; entries %d@."
          r.O.Optimizer.elapsed r.O.Optimizer.joins
          r.O.Optimizer.generated.O.Memo.nljn r.O.Optimizer.generated.O.Memo.mgjn
          r.O.Optimizer.generated.O.Memo.hsjn r.O.Optimizer.kept
          r.O.Optimizer.entries))
  in
  Cmd.v (Cmd.info "optimize" ~doc:"Compile a query and show the plan")
    Term.(
      ret
        (const run $ env_term $ workload_term $ query_term $ sql_term
       $ schema_term $ metrics_term))

let estimate_cmd =
  let run env workload query sql schema metrics =
    wrap (fun () ->
      with_metrics metrics (fun () ->
        let block = resolve_block env ~workload ~query ~sql ~schema in
        let model = E.Common.model_for env in
        let p = Cote.Predict.compile_time ~model env block in
        let e = p.Cote.Predict.estimate in
        Format.printf
          "estimated compile time: %.4fs@.estimated plans: NLJN=%d MGJN=%d \
           HSJN=%d (joins %d)@.estimation took %.4fs@."
          p.Cote.Predict.seconds e.Cote.Estimator.nljn e.Cote.Estimator.mgjn
          e.Cote.Estimator.hsjn e.Cote.Estimator.joins e.Cote.Estimator.elapsed))
  in
  Cmd.v (Cmd.info "estimate" ~doc:"Run the COTE on a query")
    Term.(
      ret
        (const run $ env_term $ workload_term $ query_term $ sql_term
       $ schema_term $ metrics_term))

let breakdown_cmd =
  let run env workload query sql schema metrics =
    wrap (fun () ->
      with_metrics metrics (fun () ->
        let block = resolve_block env ~workload ~query ~sql ~schema in
        let r = O.Optimizer.optimize env block in
        Format.printf "%a@." O.Instrument.pp_breakdown r.O.Optimizer.breakdown))
  in
  Cmd.v (Cmd.info "breakdown" ~doc:"Figure 2-style compile-time breakdown")
    Term.(
      ret
        (const run $ env_term $ workload_term $ query_term $ sql_term
       $ schema_term $ metrics_term))

let batch_cmd =
  let workloads_term =
    Arg.(
      value
      & opt_all string []
      & info [ "w"; "workload" ]
          ~doc:"workload to include (repeatable; default: linear, star, cycle)")
  in
  let mode_term =
    Arg.(
      value
      & opt string "compile"
      & info [ "mode" ] ~docv:"MODE" ~doc:"compile, estimate or both")
  in
  let domains_conv =
    Arg.conv
      ( (fun s ->
          if s = "auto" then Ok `Auto
          else
            match int_of_string_opt s with
            | Some n when n >= 1 -> Ok (`Count n)
            | Some _ | None ->
              Error (`Msg (Printf.sprintf "bad domain count %S (N or auto)" s))),
        fun ppf d ->
          match d with
          | `Auto -> Format.pp_print_string ppf "auto"
          | `Count n -> Format.pp_print_int ppf n )
  in
  let domains_term =
    Arg.(
      value
      & opt (some domains_conv) None
      & info [ "d"; "domains" ]
          ~doc:
            "domain count, or $(b,auto) for the runtime's recommended count \
             (default: \\$(b,QOPT_DOMAINS) or 1)")
  in
  let fingerprint_term =
    Arg.(
      value & flag
      & info [ "fingerprint" ]
          ~doc:"print the batch determinism fingerprint (MD5 over every \
                deterministic result field)")
  in
  let plan_cache_term =
    Arg.(
      value & flag
      & info [ "plan-cache" ]
          ~doc:"store every compiled plan in a plan cache, then replay the \
                compile tasks against it and report the hit rate and replay \
                wall time")
  in
  let run env workloads mode domains fingerprint plan_cache metrics =
    wrap (fun () ->
      with_metrics metrics (fun () ->
        let workloads =
          if workloads = [] then [ "linear"; "star"; "cycle" ] else workloads
        in
        let queries =
          List.concat_map
            (fun name ->
              List.map
                (fun (q : W.Workload.query) ->
                  (Printf.sprintf "%s/%s" name q.W.Workload.q_name, q.W.Workload.block))
                (E.Common.workload env name).W.Workload.queries)
            workloads
        in
        let tasks =
          List.concat_map
            (fun (name, block) ->
              match mode with
              | "compile" -> [ (name, Qopt_par.Batch.Compile block) ]
              | "estimate" -> [ (name, Qopt_par.Batch.Estimate block) ]
              | "both" ->
                [ (name, Qopt_par.Batch.Compile block);
                  (name, Qopt_par.Batch.Estimate block) ]
              | m ->
                failwith
                  (Printf.sprintf "unknown mode %S (compile|estimate|both)" m))
            queries
        in
        let domains =
          match domains with
          | Some (`Count d) -> d
          | Some `Auto -> Qopt_par.Batch.auto_domains ()
          | None -> Qopt_par.Batch.default_domains ()
        in
        let outcomes, wall =
          Qopt_util.Timer.time (fun () ->
              Qopt_par.Batch.run_batch ~domains env (List.map snd tasks))
        in
        let cumulative = ref 0.0 in
        List.iter2
          (fun (name, _) outcome ->
            match outcome with
            | Qopt_par.Batch.Compiled r ->
              cumulative := !cumulative +. r.O.Optimizer.elapsed;
              Format.printf
                "%-24s compile %8.4fs  joins %3d  plans %5d  entries %4d@." name
                r.O.Optimizer.elapsed r.O.Optimizer.joins r.O.Optimizer.kept
                r.O.Optimizer.entries
            | Qopt_par.Batch.Estimated e ->
              cumulative := !cumulative +. e.Cote.Estimator.elapsed;
              Format.printf
                "%-24s estimate %7.4fs  joins %3d  plans %5d  entries %4d@." name
                e.Cote.Estimator.elapsed e.Cote.Estimator.joins
                (e.Cote.Estimator.nljn + e.Cote.Estimator.mgjn
                + e.Cote.Estimator.hsjn)
                e.Cote.Estimator.entries)
          tasks outcomes;
        let n = List.length tasks in
        Format.printf
          "batch: %d tasks, %d domain(s): wall %.4fs (%.1f tasks/s), \
           cumulative task time %.4fs, speedup %.2fx@."
          n domains wall
          (float_of_int n /. wall)
          !cumulative (!cumulative /. wall);
        if fingerprint then
          Format.printf "fingerprint: %s@."
            (Digest.to_hex (Digest.string (Qopt_par.Batch.fingerprint outcomes)));
        if plan_cache then begin
          (* Warm a plan cache from the batch results, then replay every
             compile task against it: the replay wall time is what repeat
             traffic would cost with the cache in front of the pool. *)
          let pc = Cote.Plan_cache.create () in
          List.iter2
            (fun (_, task) outcome ->
              match (task, outcome) with
              | Qopt_par.Batch.Compile block, Qopt_par.Batch.Compiled r -> (
                match r.O.Optimizer.best with
                | Some plan -> Cote.Plan_cache.store pc block ~plan r
                | None -> ())
              | _ -> ())
            tasks outcomes;
          let compiles =
            List.filter_map
              (fun (_, task) ->
                match task with
                | Qopt_par.Batch.Compile block -> Some block
                | Qopt_par.Batch.Estimate _ -> None)
              tasks
          in
          let served, replay_wall =
            Qopt_util.Timer.time (fun () ->
                List.fold_left
                  (fun n block ->
                    match Cote.Plan_cache.lookup pc block with
                    | Cote.Plan_cache.Hit _ -> n + 1
                    | Cote.Plan_cache.Miss | Cote.Plan_cache.Invalidated _ -> n)
                  0 compiles)
          in
          let n = List.length compiles in
          Format.printf
            "plan cache: %d entries; replay %d compiles: %d hits (%.1f%%), \
             wall %.4fs (batch wall %.4fs)@."
            (Cote.Plan_cache.size pc) n served
            (if n = 0 then 0.0 else 100.0 *. float_of_int served /. float_of_int n)
            replay_wall wall
        end))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Compile/estimate whole workloads across a domain pool")
    Term.(
      ret
        (const run $ env_term $ workloads_term $ mode_term $ domains_term
       $ fingerprint_term $ plan_cache_term $ metrics_term))

let calibrate_cmd =
  let run env =
    wrap (fun () ->
        let model = E.Common.model_for env in
        Format.printf "time model (%a): %a@." O.Env.pp env Cote.Time_model.pp model)
  in
  Cmd.v (Cmd.info "calibrate" ~doc:"Fit and print the time model")
    Term.(ret (const run $ env_term))

let experiment_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let run ids =
    wrap (fun () ->
        let ids = if ids = [] then E.Registry.ids else ids in
        List.iter
          (fun id ->
            match E.Registry.find id with
            | None -> failwith (Printf.sprintf "unknown experiment %s" id)
            | Some e ->
              Format.printf "== %s: %s@." e.E.Registry.id e.E.Registry.title;
              e.E.Registry.run ())
          ids)
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run experiments by id (default: all)")
    Term.(ret (const run $ ids))

let list_cmd =
  let run env =
    wrap (fun () ->
        Format.printf "workloads:@.";
        List.iter
          (fun name ->
            let wl = E.Common.workload env name in
            Format.printf "  %-12s %d queries: %s@." name (W.Workload.size wl)
              (String.concat ", "
                 (List.map
                    (fun (q : W.Workload.query) -> q.W.Workload.q_name)
                    wl.W.Workload.queries)))
          workload_names;
        Format.printf "experiments: %s@." (String.concat ", " E.Registry.ids))
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, queries and experiments")
    Term.(ret (const run $ env_term))

(* ------------------------------------------------------------------ *)
(* Compile service: serve / client / loadgen                           *)
(* ------------------------------------------------------------------ *)

module Srv = Qopt_server

let addr_of ~socket ~tcp : Srv.Server.addr =
  match tcp with
  | Some spec -> (
    match String.rindex_opt spec ':' with
    | Some i -> (
      let host = String.sub spec 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
      | Some port -> `Tcp (host, port)
      | None -> failwith (Printf.sprintf "bad --tcp %S (HOST:PORT)" spec))
    | None -> failwith (Printf.sprintf "bad --tcp %S (HOST:PORT)" spec))
  | None -> `Unix socket

let socket_term =
  Arg.(
    value
    & opt string "/tmp/qopt.sock"
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let tcp_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"listen/connect on TCP instead")

(* The canned model ships rough serial-environment coefficients so a server
   can start instantly; --model calibrated re-fits on the calibration
   workload at startup (a few seconds) for this machine's actual speeds. *)
let model_of env = function
  | "default" ->
    Cote.Time_model.make ~c_nljn:2e-6 ~c_mgjn:5e-6 ~c_hsjn:4e-6 ()
  | "calibrated" -> E.Common.model_for env
  | m -> failwith (Printf.sprintf "unknown model %S (default|calibrated)" m)

let serve_cmd =
  let workers_term =
    Arg.(value & opt int 1 & info [ "workers" ] ~doc:"compile worker domains")
  in
  let mode_term =
    Arg.(
      value & opt string "sjf"
      & info [ "mode" ] ~doc:"scheduling: sjf (default) or fifo")
  in
  let model_term =
    Arg.(
      value & opt string "default"
      & info [ "model" ]
          ~doc:"time model: default (canned coefficients) or calibrated \
                (fit at startup)")
  in
  let per_request_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "per-request-s" ]
          ~doc:"reject any compile whose estimate exceeds this many seconds")
  in
  let aggregate_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "aggregate-s" ]
          ~doc:"reject when admitted estimated seconds in flight would \
                exceed this")
  in
  let max_queue_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-queue" ] ~doc:"reject when this many compiles are queued")
  in
  let downgrade_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "downgrade-s" ]
          ~doc:"estimates above this walk down the optimization-level chain")
  in
  let deadline_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ]
          ~doc:"default per-compile deadline for requests that carry none")
  in
  let plan_cache_term =
    Arg.(
      value & flag
      & info [ "plan-cache" ]
          ~doc:"serve repeated statement templates from a plan cache \
                (parameter-abstracted keys, selectivity-envelope \
                invalidation) instead of recompiling")
  in
  let plan_cache_slack_term =
    Arg.(
      value
      & opt float Cote.Plan_cache.default_config.Cote.Plan_cache.slack
      & info [ "plan-cache-slack" ] ~docv:"FRACTION"
          ~doc:"envelope half-width: a cached plan is served while every \
                predicate selectivity stays within (1±FRACTION) of its \
                store-time estimate")
  in
  let recalibrate_term =
    Arg.(
      value & flag
      & info [ "recalibrate" ]
          ~doc:"refit the time-model coefficients online: completed \
                compiles feed a sliding window, and when the windowed \
                mean prediction error crosses the drift threshold the \
                model is refitted and swapped atomically")
  in
  let recalib_window_term =
    Arg.(
      value
      & opt int Cote.Recalibrate.default_config.Cote.Recalibrate.window
      & info [ "recalib-window" ] ~docv:"N"
          ~doc:"observations retained for refitting")
  in
  let recalib_drift_term =
    Arg.(
      value
      & opt float
          Cote.Recalibrate.default_config.Cote.Recalibrate.drift_threshold_pct
      & info [ "recalib-drift" ] ~docv:"PCT"
          ~doc:"refit when the windowed mean relative prediction error \
                reaches this many percent")
  in
  let recalib_min_interval_term =
    Arg.(
      value
      & opt int Cote.Recalibrate.default_config.Cote.Recalibrate.min_refit_interval
      & info [ "recalib-min-interval" ] ~docv:"N"
          ~doc:"observations that must separate consecutive refit attempts")
  in
  let trust_hints_term =
    Arg.(
      value & flag
      & info [ "trust-hints" ]
          ~doc:"admit compile requests on their estimate_hint_s instead of \
                running a local COTE pass (fleet backends behind a router \
                that estimates once); ignored when --downgrade-s is set")
  in
  let max_memo_entries_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-memo-entries" ] ~docv:"N"
          ~doc:"abort any DP pass (estimate or compile) whose MEMO grows \
                past N entries and serve the query with the spanning-tree \
                regime instead")
  in
  let max_kept_plans_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-kept-plans" ] ~docv:"N"
          ~doc:"abort any DP pass holding more than N pruned-surviving \
                plans and fall back to the spanning-tree regime")
  in
  let greedy_restarts_term =
    Arg.(
      value & opt int 0
      & info [ "greedy-restarts" ] ~docv:"N"
          ~doc:"randomized spanning-tree restarts per fallback compile")
  in
  let run env socket tcp workers mode model per_request aggregate max_queue
      downgrade deadline plan_cache plan_cache_slack recalibrate recalib_window
      recalib_drift recalib_min_interval trust_hints max_memo_entries
      max_kept_plans greedy_restarts =
    wrap (fun () ->
        let mode =
          match mode with
          | "sjf" -> Srv.Sched.Sjf
          | "fifo" -> Srv.Sched.Fifo
          | m -> failwith (Printf.sprintf "unknown mode %S (sjf|fifo)" m)
        in
        let admission =
          {
            Srv.Admission.per_request_s =
              Option.value ~default:infinity per_request;
            aggregate_s = Option.value ~default:infinity aggregate;
            max_queue = Option.value ~default:max_int max_queue;
          }
        in
        let listen = addr_of ~socket ~tcp in
        let cfg =
          {
            (Srv.Server.default_config ~listen ~model:(model_of env model)
               ~schemas:
                 [
                   ("warehouse", schema_for env "warehouse");
                   ("tpch", schema_for env "tpch");
                   ("giant", schema_for env "giant");
                 ]
               ())
            with
            env;
            workers;
            mode;
            admission;
            downgrade_s = downgrade;
            default_deadline_s = Option.map (fun ms -> ms /. 1000.0) deadline;
            plan_cache =
              (if plan_cache then
                 Some
                   {
                     Cote.Plan_cache.default_config with
                     Cote.Plan_cache.slack = plan_cache_slack;
                   }
               else None);
            recalibrate =
              (if recalibrate then
                 Some
                   {
                     Cote.Recalibrate.default_config with
                     Cote.Recalibrate.window = recalib_window;
                     drift_threshold_pct = recalib_drift;
                     min_refit_interval = recalib_min_interval;
                   }
               else None);
            trust_hints;
            budget =
              O.Budget.make ?max_memo_entries ?max_kept_plans ();
            greedy_restarts;
          }
        in
        let pp_addr ppf = function
          | `Unix p -> Format.fprintf ppf "unix:%s" p
          | `Tcp (h, p) -> Format.fprintf ppf "tcp:%s:%d" h p
        in
        Srv.Server.run
          ~on_ready:(fun () ->
            Format.printf "qopt serve: listening on %a (%d worker%s, %s)@."
              pp_addr listen workers
              (if workers = 1 then "" else "s")
              (Srv.Sched.mode_string mode))
          cfg;
        Format.printf "qopt serve: shut down@.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the compile-service daemon (admission, SJF, level downgrades)")
    Term.(
      ret
        (const run $ env_term $ socket_term $ tcp_term $ workers_term
       $ mode_term $ model_term $ per_request_term $ aggregate_term
       $ max_queue_term $ downgrade_term $ deadline_term $ plan_cache_term
       $ plan_cache_slack_term $ recalibrate_term $ recalib_window_term
       $ recalib_drift_term $ recalib_min_interval_term $ trust_hints_term
       $ max_memo_entries_term $ max_kept_plans_term $ greedy_restarts_term))

let fleet_cmd =
  let backends_term =
    Arg.(
      value & opt int 3
      & info [ "backends" ] ~docv:"N" ~doc:"backend server processes to spawn")
  in
  let latency_tier_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "latency-tier" ] ~docv:"K"
          ~doc:"backends reserved for small queries (default all but one); \
                the rest take the big ones")
  in
  let threshold_term =
    Arg.(
      value & opt float 0.5
      & info [ "threshold-ms" ] ~docv:"MS"
          ~doc:"predicted milliseconds at or under this route to the \
                latency tier")
  in
  let affinity_term =
    Arg.(
      value & flag
      & info [ "affinity" ]
          ~doc:"route repeat statement templates to the same backend \
                (rendezvous hash on the schema-qualified template key); \
                default balances on least in-flight")
  in
  let workers_term =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~doc:"compile worker domains per backend")
  in
  let plan_cache_term =
    Arg.(
      value & flag
      & info [ "plan-cache" ] ~doc:"backends serve repeats from a plan cache")
  in
  let model_term =
    Arg.(
      value & opt string "default"
      & info [ "model" ] ~doc:"time model: default or calibrated")
  in
  let run env socket tcp backends latency_tier threshold_ms affinity workers
      plan_cache model =
    wrap (fun () ->
        if backends < 1 then failwith "--backends must be at least 1";
        let listen = addr_of ~socket ~tcp in
        (* Backend addresses derive from the router's: sockets get a .bN
           suffix, TCP backends take the next ports on loopback. *)
        let backend_addr i : Srv.Server.addr =
          match listen with
          | `Unix p -> `Unix (Printf.sprintf "%s.b%d" p i)
          | `Tcp (_, port) -> `Tcp ("127.0.0.1", port + 1 + i)
        in
        let spec i =
          let addr = backend_addr i in
          let argv =
            [ "qopt"; "serve"; "--workers"; string_of_int workers;
              "--trust-hints"; "--model"; model ]
            @ (if plan_cache then [ "--plan-cache" ] else [])
            @ (match addr with
              | `Unix p -> [ "-s"; p ]
              | `Tcp (h, p) -> [ "--tcp"; Printf.sprintf "%s:%d" h p ])
          in
          {
            F.Backend.sp_addr = addr;
            sp_launch =
              F.Backend.Spawn
                { exe = Sys.executable_name; argv = Array.of_list argv };
          }
        in
        let cfg =
          {
            (F.Router.default_config ~listen
               ~backends:(List.init backends spec)
               ~model:(model_of env model)
               ~schemas:
                 [
                   ("warehouse", schema_for env "warehouse");
                   ("tpch", schema_for env "tpch");
                   ("giant", schema_for env "giant");
                 ]
               ())
            with
            F.Router.latency_tier =
              Option.value ~default:(max 1 (backends - 1)) latency_tier;
            threshold_s = threshold_ms /. 1000.0;
            affinity;
            env;
          }
        in
        let pp_addr ppf = function
          | `Unix p -> Format.fprintf ppf "unix:%s" p
          | `Tcp (h, p) -> Format.fprintf ppf "tcp:%s:%d" h p
        in
        F.Router.run
          ~on_ready:(fun () ->
            Format.printf
              "qopt fleet: %d backend%s up (%d latency-tier), listening on \
               %a%s@."
              backends
              (if backends = 1 then "" else "s")
              (min (max 1 (Option.value ~default:(backends - 1) latency_tier)) backends)
              pp_addr listen
              (if affinity then ", template affinity" else ""))
          cfg;
        Format.printf "qopt fleet: shut down@.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Route compiles across a fleet of spawned backend servers \
             (estimate once, tier by predicted time, fail over on death)")
    Term.(
      ret
        (const run $ env_term $ socket_term $ tcp_term $ backends_term
       $ latency_tier_term $ threshold_term $ affinity_term $ workers_term
       $ plan_cache_term $ model_term))

let client_cmd =
  let op_term =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP" ~doc:"estimate, compile, stats or shutdown")
  in
  let deadline_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~doc:"compile deadline in milliseconds")
  in
  let run socket tcp op sql schema deadline_ms =
    wrap (fun () ->
        let c = Srv.Client.connect (addr_of ~socket ~tcp) in
        Fun.protect
          ~finally:(fun () -> Srv.Client.close c)
          (fun () ->
            let id = Srv.Client.fresh_id c in
            let need_sql () =
              match sql with
              | Some s -> s
              | None -> failwith "--sql is required for estimate/compile"
            in
            let req =
              match op with
              | "estimate" -> Srv.Proto.Estimate { id; sql = need_sql (); schema }
              | "compile" ->
                Srv.Proto.Compile
                  {
                    id;
                    sql = need_sql ();
                    schema;
                    deadline_ms;
                    estimate_hint_s = None;
                  }
              | "stats" -> Srv.Proto.Stats { id }
              | "shutdown" -> Srv.Proto.Shutdown { id }
              | o ->
                failwith
                  (Printf.sprintf
                     "unknown op %S (estimate|compile|stats|shutdown)" o)
            in
            match Srv.Client.request c req with
            | None -> failwith "server closed the connection without replying"
            | Some reply ->
              print_endline
                (Qopt_util.Json.to_string (Srv.Proto.reply_to_json reply))))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running qopt server and print the JSON reply")
    Term.(
      ret
        (const run $ socket_term $ tcp_term $ op_term $ sql_term $ schema_term
       $ deadline_term))

let loadgen_cmd =
  let smalls_term =
    Arg.(value & opt int 48 & info [ "smalls" ] ~doc:"single-table queries")
  in
  let bigs_term =
    Arg.(value & opt int 2 & info [ "bigs" ] ~doc:"8-table star joins, sent first")
  in
  let burst_term =
    Arg.(
      value & flag
      & info [ "burst" ]
          ~doc:"pipeline the whole mix on one connection (shows scheduling \
                policy); default is closed-loop")
  in
  let clients_term =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"closed-loop client threads")
  in
  let deadline_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~doc:"per-compile deadline in milliseconds")
  in
  let scenario_term =
    Arg.(
      value & flag
      & info [ "scenario" ]
          ~doc:"fleet scenario: --tenants concurrent connections each \
                pipeline --bursts jittered bursts of the mix (smalls/bigs \
                become per-burst bases), with optional per-tenant \
                --slow-start-ms stagger")
  in
  let tenants_term =
    Arg.(value & opt int 4 & info [ "tenants" ] ~doc:"scenario connections")
  in
  let bursts_term =
    Arg.(value & opt int 3 & info [ "bursts" ] ~doc:"bursts per tenant")
  in
  let pause_term =
    Arg.(
      value & opt float 20.0
      & info [ "pause-ms" ] ~doc:"idle gap between a tenant's bursts")
  in
  let slow_start_term =
    Arg.(
      value & opt float 0.0
      & info [ "slow-start-ms" ] ~doc:"per-tenant connect stagger")
  in
  let seed_term =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"scenario jitter seed")
  in
  let run socket tcp smalls bigs burst clients deadline_ms scenario tenants
      bursts pause_ms slow_start_ms seed =
    wrap (fun () ->
        let addr = addr_of ~socket ~tcp in
        let sql = Srv.Loadgen.warehouse_mix ~smalls ~bigs in
        let s =
          if scenario then
            F.Scenario.run
              {
                F.Scenario.tenants;
                bursts;
                smalls;
                bigs;
                pause_s = pause_ms /. 1000.0;
                slow_start_s = slow_start_ms /. 1000.0;
                seed;
              }
              ~addr
          else if burst then Srv.Loadgen.run_burst ?deadline_ms ~addr ~sql ()
          else Srv.Loadgen.run_closed ?deadline_ms ~clients ~addr ~sql ()
        in
        Format.printf
          "sent %d: compiled %d, rejected %d, cancelled %d, errored %d@."
          s.Srv.Loadgen.sent s.Srv.Loadgen.compiled s.Srv.Loadgen.rejected
          s.Srv.Loadgen.cancelled s.Srv.Loadgen.errored;
        Format.printf "wall %.3fs, %.1f compiles/s@." s.Srv.Loadgen.wall_s
          s.Srv.Loadgen.qps;
        let p q = Srv.Loadgen.percentile s.Srv.Loadgen.latencies_s q in
        Format.printf "latency p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms@."
          (1e3 *. p 0.50) (1e3 *. p 0.95) (1e3 *. p 0.99) (1e3 *. p 1.0))
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running qopt server with a mixed compile workload")
    Term.(
      ret
        (const run $ socket_term $ tcp_term $ smalls_term $ bigs_term
       $ burst_term $ clients_term $ deadline_term $ scenario_term
       $ tenants_term $ bursts_term $ pause_term $ slow_start_term
       $ seed_term))

let () =
  let info =
    Cmd.info "qopt" ~version:"1.0.0"
      ~doc:"Query-optimizer compilation-time estimation (SIGMOD 2003 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            optimize_cmd; estimate_cmd; breakdown_cmd; batch_cmd; calibrate_cmd;
            experiment_cmd; list_cmd; serve_cmd; fleet_cmd; client_cmd;
            loadgen_cmd;
          ]))
