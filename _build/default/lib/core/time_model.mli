(** The compilation-time model (Section 3.5):

    [T = T_inst × Σ_t (C_t × P_t)]

    where [P_t] is the estimated number of generated join plans of type [t]
    and [C_t] the per-plan instruction count.  We fold [T_inst] into the
    coefficients, so each [c_*] is in seconds per plan.  Coefficients come
    from non-negative least-squares regression over a training workload
    ({!Calibrate}); they must be re-fitted when the optimizer changes —
    exactly as the paper notes for new DB2 releases.

    A per-join term is also available: the paper's baseline — estimating
    time from the number of joins alone ("the number of joins" metric of
    Ono-Lohman that Figure 6(a) shows to be ~20x worse) — is a time model
    with only [c_join] set. *)

module O = Qopt_optimizer

type t = {
  c_nljn : float;  (** seconds per generated NLJN plan *)
  c_mgjn : float;
  c_hsjn : float;
  c_join : float;  (** seconds per enumerated join (baseline model) *)
}

val make : ?c_join:float -> c_nljn:float -> c_mgjn:float -> c_hsjn:float -> unit -> t

val joins_only : float -> t
(** The Ono-Lohman-style baseline: every join costs the same. *)

val predict : t -> Estimator.estimate -> float
(** Predicted compilation seconds for an estimate. *)

val predict_counts :
  t -> nljn:float -> mgjn:float -> hsjn:float -> joins:float -> float

val ratios : t -> float * float * float
(** [(c_mgjn : c_nljn : c_hsjn)] normalized so the smallest non-zero
    coefficient is 1 — comparable to the paper's reported 5:2:4 (serial)
    and 6:1:2 (parallel) ratios. *)

val pp : Format.formatter -> t -> unit
