lib/optimizer/order_prop.ml: Colref Equiv Format List Qopt_util String
