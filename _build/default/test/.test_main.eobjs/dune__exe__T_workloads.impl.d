test/t_workloads.ml: Alcotest Cote List Printf Qopt_catalog Qopt_optimizer Qopt_workloads
