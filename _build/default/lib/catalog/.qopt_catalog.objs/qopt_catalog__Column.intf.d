lib/catalog/column.mli: Col_type Format Histogram
