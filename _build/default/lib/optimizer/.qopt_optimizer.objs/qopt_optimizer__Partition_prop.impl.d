lib/optimizer/partition_prop.ml: Colref Equiv Format List Qopt_catalog Qopt_util String
