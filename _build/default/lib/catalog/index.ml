type t = {
  name : string;
  columns : string list;
  unique : bool;
  clustered : bool;
}

let make ?(unique = false) ?(clustered = false) ~name columns =
  if columns = [] then invalid_arg "Index.make: empty key";
  { name; columns; unique; clustered }

let provides_prefix t cols =
  let rec loop key want =
    match (key, want) with
    | _, [] -> true
    | [], _ :: _ -> false
    | k :: key', w :: want' -> String.equal k w && loop key' want'
  in
  loop t.columns cols

let pp ppf t =
  Format.fprintf ppf "%s(%s)%s" t.name
    (String.concat "," t.columns)
    (if t.unique then " unique" else "")
