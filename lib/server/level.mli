(** Estimate-driven optimization-level selection.

    "Multiple levels of optimization" (paper §1.1/§6.2): when the COTE
    predicts that full optimization would blow the budget, the server
    downgrades to a cheaper knob level {e before} compiling — the third
    way a DBMS acts on a pre-optimization estimate, next to admission and
    scheduling.

    The chain is a list of {!Cote.Multi_level.level}s ordered most- to
    least-expensive.  Selection walks the chain re-estimating until a
    level's prediction fits under the threshold; if none does, the
    cheapest level wins (serving degrades, it never refuses on level
    grounds alone — that is admission's job). *)

type chosen = {
  level : Cote.Multi_level.level;  (** the knobs the compile will run with *)
  predicted_s : float;  (** the prediction at that level *)
  prediction : Cote.Predict.prediction;  (** full estimate for the reply *)
  downgrades : int;  (** steps taken down the chain *)
}

val default_levels : Cote.Multi_level.level list
(** [dp_default] (the paper's setup) then [dp_left_deep]. *)

val select :
  levels:Cote.Multi_level.level list ->
  downgrade_s:float option ->
  predict:(Qopt_optimizer.Knobs.t -> Cote.Predict.prediction) ->
  chosen
(** [predict] runs the COTE at a knob setting (the server closes it over
    the query, model and environment).  With [downgrade_s = None] the
    first level is always chosen after a single estimation pass.  Raises
    [Invalid_argument] on an empty chain. *)
