(** Multi-domain batch compilation.

    [run_batch env tasks] compiles/estimates every task across a domain
    pool and returns the results in input order.  Per-task work is
    independent (each compile builds its own MEMO); the layers with shared
    state underneath — the {!Qopt_obs} registry and a shared
    {!Cote.Stmt_cache} — are domain-safe, so merged metrics over a batch
    equal a serial run's. *)

module O = Qopt_optimizer

type task =
  | Compile of O.Query_block.t
  | Estimate of O.Query_block.t

type outcome =
  | Compiled of O.Optimizer.result
  | Estimated of Cote.Estimator.estimate

val default_domains : unit -> int
(** [QOPT_DOMAINS] when set to a positive integer (clamped to
    {!Pool.max_domains}), else 1. *)

val auto_domains : unit -> int
(** [Domain.recommended_domain_count ()] clamped to {!Pool.max_domains} —
    what [qopt batch --domains auto] uses.  The count actually used by a
    batch is recorded in the [batch.domains] gauge. *)

val run_batch :
  ?domains:int -> ?knobs:O.Knobs.t -> O.Env.t -> task list -> outcome list
(** [domains] defaults to {!default_domains}.  Results are positionally
    aligned with [tasks] and identical (up to wall-clock fields) for every
    domain count; a task's exception is re-raised after the batch, lowest
    task index first. *)

val map :
  ?domains:int ->
  ?seed:int ->
  (rng:Qopt_util.Rng.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** Generic batch map through the pool.  Each item's [rng] is seeded from
    [(seed, index)] only — bit-for-bit reproducible regardless of domain
    count or steal order.  [seed] defaults to 0. *)

val fingerprint : outcome list -> string
(** Canonical rendering of every deterministic outcome field (plans, costs,
    counters — not elapsed times).  Equal fingerprints across domain counts
    are the batch determinism guarantee. *)
