lib/sqlfront/ast.ml: Float Format List
