lib/core/calibrate.mli: Qopt_optimizer Time_model
