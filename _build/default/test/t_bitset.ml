module Bitset = Qopt_util.Bitset

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let t name f = Alcotest.test_case name `Quick f

let basics =
  [
    t "empty is empty" (fun () -> check "empty" true (Bitset.is_empty Bitset.empty));
    t "singleton mem" (fun () ->
        check "mem 5" true (Bitset.mem 5 (Bitset.singleton 5));
        check "not mem 4" false (Bitset.mem 4 (Bitset.singleton 5)));
    t "singleton out of range" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Bitset: element 62 out of [0,61]")
          (fun () -> ignore (Bitset.singleton 62)));
    t "add/remove round-trip" (fun () ->
        let s = Bitset.add 3 (Bitset.add 7 Bitset.empty) in
        check "mem 3" true (Bitset.mem 3 s);
        check "gone" false (Bitset.mem 3 (Bitset.remove 3 s));
        check "7 stays" true (Bitset.mem 7 (Bitset.remove 3 s)));
    t "cardinal" (fun () ->
        check_int "3 elements" 3 (Bitset.cardinal (Bitset.of_list [ 0; 5; 9 ])));
    t "elements sorted" (fun () ->
        Alcotest.(check (list int))
          "sorted" [ 1; 4; 8 ]
          (Bitset.elements (Bitset.of_list [ 8; 1; 4 ])));
    t "min_elt" (fun () ->
        check_int "min" 2 (Bitset.min_elt (Bitset.of_list [ 9; 2; 5 ]));
        Alcotest.check_raises "empty raises" Not_found (fun () ->
            ignore (Bitset.min_elt Bitset.empty)));
    t "union inter diff" (fun () ->
        let a = Bitset.of_list [ 0; 1; 2 ] and b = Bitset.of_list [ 1; 2; 3 ] in
        Alcotest.(check (list int)) "union" [ 0; 1; 2; 3 ] (Bitset.elements (Bitset.union a b));
        Alcotest.(check (list int)) "inter" [ 1; 2 ] (Bitset.elements (Bitset.inter a b));
        Alcotest.(check (list int)) "diff" [ 0 ] (Bitset.elements (Bitset.diff a b)));
    t "subset / disjoint" (fun () ->
        check "subset" true (Bitset.subset (Bitset.of_list [ 1 ]) (Bitset.of_list [ 0; 1 ]));
        check "not subset" false (Bitset.subset (Bitset.of_list [ 2 ]) (Bitset.of_list [ 0; 1 ]));
        check "disjoint" true (Bitset.disjoint (Bitset.of_list [ 0 ]) (Bitset.of_list [ 1 ]));
        check "not disjoint" false (Bitset.disjoint (Bitset.of_list [ 0; 1 ]) (Bitset.of_list [ 1 ])));
    t "full" (fun () ->
        check_int "cardinal" 5 (Bitset.cardinal (Bitset.full 5));
        check "has 4" true (Bitset.mem 4 (Bitset.full 5));
        check "not 5" false (Bitset.mem 5 (Bitset.full 5)));
    t "iter_subsets enumerates 2^n - 2" (fun () ->
        let s = Bitset.of_list [ 1; 3; 5; 7 ] in
        let n = ref 0 in
        Bitset.iter_subsets s (fun sub ->
            incr n;
            Alcotest.(check bool) "proper subset" true
              (Bitset.subset sub s && not (Bitset.equal sub s) && not (Bitset.is_empty sub)));
        check_int "count" 14 !n);
    t "fold sums" (fun () ->
        check_int "sum" 12 (Bitset.fold ( + ) (Bitset.of_list [ 3; 4; 5 ]) 0));
    t "to_int/of_int round-trip" (fun () ->
        let s = Bitset.of_list [ 0; 2; 61 ] in
        check "roundtrip" true (Bitset.equal s (Bitset.of_int (Bitset.to_int s))));
    t "pp" (fun () ->
        Alcotest.(check string) "format" "{0,3}" (Format.asprintf "%a" Bitset.pp (Bitset.of_list [ 3; 0 ])));
  ]

let gen_set =
  QCheck2.Gen.map
    (fun l -> Bitset.of_list (List.map (fun i -> abs i mod 20) l))
    QCheck2.Gen.(small_list small_int)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen f)

let props =
  [
    prop "union commutative" (QCheck2.Gen.pair gen_set gen_set) (fun (a, b) ->
        Bitset.equal (Bitset.union a b) (Bitset.union b a));
    prop "inter distributes over union" (QCheck2.Gen.triple gen_set gen_set gen_set)
      (fun (a, b, c) ->
        Bitset.equal
          (Bitset.inter a (Bitset.union b c))
          (Bitset.union (Bitset.inter a b) (Bitset.inter a c)));
    prop "diff then union restores superset" (QCheck2.Gen.pair gen_set gen_set)
      (fun (a, b) -> Bitset.equal (Bitset.union (Bitset.diff a b) (Bitset.inter a b)) a);
    prop "cardinal = |elements|" gen_set (fun s ->
        Bitset.cardinal s = List.length (Bitset.elements s));
    prop "subset iff diff empty" (QCheck2.Gen.pair gen_set gen_set) (fun (a, b) ->
        Bitset.subset a b = Bitset.is_empty (Bitset.diff a b));
    prop "disjoint iff inter empty" (QCheck2.Gen.pair gen_set gen_set) (fun (a, b) ->
        Bitset.disjoint a b = Bitset.is_empty (Bitset.inter a b));
  ]

let suite = basics @ props
