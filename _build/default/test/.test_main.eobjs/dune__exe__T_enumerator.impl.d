test/t_enumerator.ml: Alcotest Hashtbl Helpers List Printf QCheck2 QCheck_alcotest Qopt_catalog Qopt_optimizer Qopt_util
