lib/core/estimator.ml: Accumulate List Qopt_optimizer Qopt_util
