(** Experiment [mop]: the Figure 1 meta-optimizer.

    For each query of a mixed workload, the MOP compiles cheaply, compares
    the COTE's high-level compile estimate C against the low plan's
    execution estimate E, and reoptimizes only when C < E.  Shape: the MOP
    skips reoptimization for queries whose high-level compilation would
    outlast their execution, and its total elapsed (compile + estimated
    execution) never loses badly — and typically wins — against the
    always-high-level strategy. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module M = Qopt_mop
module Tablefmt = Qopt_util.Tablefmt

(* The paper's motivating corner: "a query can take longer to compile than
   to execute, especially when the query is complex yet very selective" —
   wide joins whose point predicates make execution an index-probe chain. *)
let selective_queries schema =
  let q name sql =
    Qopt_workloads.Workload.query ~sql name
      (Qopt_sql.Binder.parse_and_bind ~name schema sql)
  in
  [
    q "sel_q1"
      "SELECT i.i_brand_id, COUNT(*) FROM store_sales ss, store_returns sr,        catalog_sales cs, date_dim d1, date_dim d2, date_dim d3, item i,        store s, customer c, customer_demographics cd, household_demographics        hd, customer_address ca, promotion p, warehouse w WHERE        ss.ss_ticket_number = sr.sr_ticket_number AND ss.ss_item_sk =        sr.sr_item_sk AND sr.sr_customer_sk = cs.cs_bill_customer_sk AND        cs.cs_item_sk = i.i_item_sk AND ss.ss_item_sk = i.i_item_sk AND        ss.ss_sold_date_sk = d1.d_date_sk AND sr.sr_returned_date_sk =        d2.d_date_sk AND cs.cs_sold_date_sk = d3.d_date_sk AND ss.ss_store_sk        = s.s_store_sk AND ss.ss_customer_sk = c.c_customer_sk AND        c.c_current_cdemo_sk = cd.cd_demo_sk AND c.c_current_hdemo_sk =        hd.hd_demo_sk AND c.c_current_addr_sk = ca.ca_address_sk AND        ss.ss_promo_sk = p.p_promo_sk AND cs.cs_warehouse_sk =        w.w_warehouse_sk AND ss.ss_ticket_number = 424242 AND        cs.cs_order_number = 777 AND c.c_customer_sk = 12345 GROUP BY        i.i_brand_id";
    (* sel_q2: an 8-way selective probe chain. *)
    q "sel_q2"
      "SELECT c.c_birth_year FROM store_sales ss, item i, date_dim d, store        s, customer c, customer_address ca, household_demographics hd,        promotion pr WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_sold_date_sk        = d.d_date_sk AND ss.ss_store_sk = s.s_store_sk AND ss.ss_customer_sk        = c.c_customer_sk AND c.c_current_addr_sk = ca.ca_address_sk AND        c.c_current_hdemo_sk = hd.hd_demo_sk AND ss.ss_promo_sk =        pr.p_promo_sk AND ss.ss_ticket_number = 99991 AND c.c_customer_sk =        501 AND i.i_item_sk = 1000";
  ]

let run () =
  let env = Common.serial in
  (* A mixed bag: complex warehouse queries plus very selective ones whose
     execution is far cheaper than their high-level compilation. *)
  let base = Common.workload env "real2" in
  let wl =
    {
      base with
      Qopt_workloads.Workload.queries =
        base.Qopt_workloads.Workload.queries
        @ selective_queries base.Qopt_workloads.Workload.schema;
    }
  in
  let cfg = M.Mop.config (Common.model_for env) in
  let t =
    Tablefmt.create ~title:"mop: meta-optimizer decisions (real2_s)"
      [
        ("query", Tablefmt.Left);
        ("E (exec est)", Tablefmt.Right);
        ("C (compile est)", Tablefmt.Right);
        ("decision", Tablefmt.Left);
        ("actual high compile", Tablefmt.Right);
        ("mop elapsed", Tablefmt.Right);
      ]
  in
  let mop_total = ref 0.0 and high_total = ref 0.0 in
  List.iter
    (fun (q : W.Workload.query) ->
      let outcome = M.Mop.run cfg env q.W.Workload.block in
      let high_compile, high_exec = M.Mop.always_high env q.W.Workload.block in
      mop_total :=
        !mop_total +. outcome.M.Mop.elapsed +. outcome.M.Mop.exec_estimate_final;
      high_total := !high_total +. high_compile +. high_exec;
      Tablefmt.add_row t
        [
          q.W.Workload.q_name;
          Tablefmt.fseconds outcome.M.Mop.exec_estimate_low;
          Tablefmt.fseconds outcome.M.Mop.compile_estimate_high;
          (match outcome.M.Mop.decision with
          | M.Mop.Keep_low -> "keep low"
          | M.Mop.Reoptimize -> "reoptimize");
          (match outcome.M.Mop.compile_actual_high with
          | None -> "-"
          | Some s -> Tablefmt.fseconds s);
          Tablefmt.fseconds outcome.M.Mop.elapsed;
        ])
    wl.W.Workload.queries;
  Tablefmt.print t;
  Format.printf
    "total (compile + estimated execution): MOP %.3fs vs always-high %.3fs@.@."
    !mop_total !high_total
