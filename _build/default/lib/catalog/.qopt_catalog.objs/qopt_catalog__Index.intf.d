lib/catalog/index.mli: Format
