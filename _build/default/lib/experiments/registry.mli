(** The experiment registry: every table and figure of the paper, plus the
    extension experiments, addressable by id. *)

type t = {
  id : string;
  title : string;
  run : unit -> unit;
}

val all : t list
(** In presentation order. *)

val find : string -> t option

val ids : string list
