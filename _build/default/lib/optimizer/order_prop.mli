(** The order physical property (System R's "interesting orders").

    An interesting order is a *requested* row order with a kind that decides
    its subsumption rule (Section 4 of the paper: prefix subsumption for
    ORDER BY coverage, set subsumption for GROUP BY coverage) and its
    retirement behaviour.  Plans carry a *physical* order — a plain column
    sequence — which may satisfy several interesting orders at once. *)

type kind =
  | Join_key  (** order on a (future) merge-join column *)
  | Grouping  (** order useful to a sort-based GROUP BY: any permutation *)
  | Ordering  (** the ORDER BY clause: exact sequence required *)

type t = {
  cols : Colref.t list;
  kind : kind;
}

type physical = Colref.t list
(** The order actually delivered by a plan; [[]] means unordered (DC). *)

val make : kind -> Colref.t list -> t
(** Raises [Invalid_argument] on an empty column list. *)

val canonical : Equiv.t -> t -> Colref.t list
(** Equivalence-normalized column list; [Grouping] columns are additionally
    sorted so that set-equal groupings canonicalize identically. *)

val equal_under : Equiv.t -> t -> t -> bool
(** Same physical requirement: canonical column lists coincide (a grouping
    matches an order on any permutation of the same columns). *)

val applicable : tables:Qopt_util.Bitset.t -> t -> bool
(** All referenced quantifiers are inside the table set. *)

val satisfied_by : Equiv.t -> t -> physical -> bool
(** Does a plan's physical order satisfy this interesting order?
    [Join_key]/[Ordering]: the requested columns are a prefix of the physical
    order; [Grouping]: the requested column set equals the first [k] physical
    columns in any permutation. *)

val covers : Equiv.t -> base:t -> candidate:t -> bool
(** [covers equiv ~base ~candidate] is the subsumption test [base ≺ candidate]
    (candidate is more general): a plan delivering [candidate] also delivers
    [base].  Uses the candidate's kind to pick prefix vs. set subsumption. *)

val insert_dedup : Equiv.t -> t -> t list -> t list
(** Adds an interesting order to a list unless an equivalent one (under
    {!equal_under}) is present.  When merging, a non-[Join_key] kind wins so
    that retirement stays conservative. *)

val pp : Format.formatter -> t -> unit

val pp_physical : Format.formatter -> physical -> unit
