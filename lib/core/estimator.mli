(** The COTE front end: runs the shared join enumerator in plan-estimate
    mode over a query (all blocks) and returns the estimated plan counts.

    This is the paper's headline mechanism: the enumerator is *reused* —
    every knob, heuristic and constraint applies — while plan generation is
    bypassed, so estimation costs a few percent of real optimization. *)

module O = Qopt_optimizer

type estimate = {
  joins : int;  (** joins enumerated in plan-estimate mode *)
  nljn : int;  (** estimated generated NLJN plans *)
  mgjn : int;
  hsjn : int;
  scan_plans : int;  (** estimated non-join plans *)
  entries : int;  (** MEMO entries touched *)
  elapsed : float;  (** wall-clock seconds of the estimation itself *)
  est_memo_plans : float;  (** estimated plans kept in the MEMO (Sec. 6.2) *)
  mv_tests : int;
      (** predicted materialized-view matching tests: MEMO entries x
          registered views (Sec. 6.2 — view-matching time must be accounted
          for, and the reused enumerator knows the entry count) *)
}

val total : estimate -> int
(** [nljn + mgjn + hsjn]. *)

val get : estimate -> O.Join_method.t -> int

val estimate :
  ?options:Accumulate.options ->
  ?budget:O.Budget.t ->
  ?knobs:O.Knobs.t ->
  ?views:O.Mat_view.t list ->
  O.Env.t ->
  O.Query_block.t ->
  estimate
(** Estimates the query (the block and all its children, like
    {!O.Optimizer.optimize}).  [knobs] defaults to {!O.Knobs.default}.
    [budget] (default unlimited) caps the estimate pass the same way it
    caps a real compile: the estimate-mode enumerator builds the same MEMO
    entries the optimizer would, so a giant clique explodes here too.
    Crossing a cap raises {!O.Budget.Exceeded} — which doubles as the
    cheapest possible "DP is infeasible" signal for regime selection. *)
