(** Monotonic integer counter, sharded per domain slot ({!Shard}):
    increments touch only the calling domain's cell, [value] sums the
    cells.  Concurrent workers on distinct slots never lose updates. *)

type t

val make : string -> t
(** Standalone constructor; use {!Registry.counter} for named, exported
    metrics. *)

val name : t -> string

val incr : t -> unit
(** No-op while {!Control.on} is false. *)

val add : t -> int -> unit
(** No-op while {!Control.on} is false. *)

val value : t -> int

val reset : t -> unit
