(** Enumeration "knobs".

    Commercial optimizers customize dynamic programming with limits that
    "essentially create many additional intermediate optimization levels"
    (Section 1.1): composite-inner size caps, Cartesian-product rules,
    left-deep restrictions.  Because the estimator reuses the join
    enumerator, all knob effects are reflected in its counts for free —
    this is the paper's argument for enumerator reuse over closed-form
    join counting. *)

type t = {
  allow_cartesian : bool;
      (** enumerate Cartesian products between unconnected sets *)
  card1_cartesian : bool;
      (** DB2 heuristic (Section 4): allow a Cartesian product when one
          input's estimated cardinality is ~1 — this makes the set of
          enumerated joins depend on cardinality estimates *)
  card1_threshold : float;  (** "~1" cutoff, default 1.5 rows *)
  card1_max_size : int;
      (** the card-1 rule only applies when the ~1-row input covers at most
          this many tables (a sanity guard real systems employ: a collapsed
          cardinality estimate deep in a big composite should not open the
          floodgates to Cartesian products everywhere) *)
  max_inner : int option;
      (** upper bound on composite-inner size (None = unbounded bushy) *)
  left_deep_only : bool;  (** restrict to left-deep trees *)
}

val default : t
(** The configuration the paper's experiments run under: bushy trees "with
    certain limits on the composite inner size" (Section 5) — composite
    inner capped at 3 tables, card-1 Cartesian heuristic on. *)

val full_bushy : t
(** No composite-inner limit. *)

val left_deep : t
(** Left-deep only, no Cartesian products. *)

val permissive : t -> t
(** The fallback configuration a real system switches to when the knobs
    leave a query unplannable (disconnected join graph without Cartesian
    products, or an over-tight composite-inner limit): Cartesian products
    on, no inner limit.  Both the optimizer driver and the COTE apply the
    same fallback, so the estimator keeps tracking the real join stream. *)

val pp : Format.formatter -> t -> unit
