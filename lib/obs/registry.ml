module Tablefmt = Qopt_util.Tablefmt

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histo of Histo.t
  | M_span of Span.t

type t = {
  r_name : string;
  metrics : (string, metric) Hashtbl.t;
}

let create ?(name = "registry") () = { r_name = name; metrics = Hashtbl.create 64 }

let default = create ~name:"qopt" ()

let name t = t.r_name

let find_or_create t key ~kind ~make ~extract =
  match Hashtbl.find_opt t.metrics key with
  | None ->
    let m = make key in
    Hashtbl.add t.metrics key (kind m);
    m
  | Some existing -> (
    match extract existing with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Qopt_obs.Registry: %S already registered with another kind" key))

let counter t key =
  find_or_create t key
    ~kind:(fun c -> M_counter c)
    ~make:Counter.make
    ~extract:(function M_counter c -> Some c | _ -> None)

let gauge t key =
  find_or_create t key
    ~kind:(fun g -> M_gauge g)
    ~make:Gauge.make
    ~extract:(function M_gauge g -> Some g | _ -> None)

let histogram t key =
  find_or_create t key
    ~kind:(fun h -> M_histo h)
    ~make:Histo.make
    ~extract:(function M_histo h -> Some h | _ -> None)

let span t key =
  find_or_create t key
    ~kind:(fun s -> M_span s)
    ~make:(Span.make ~always:false)
    ~extract:(function M_span s -> Some s | _ -> None)

let counter_value t key =
  match Hashtbl.find_opt t.metrics key with
  | Some (M_counter c) -> Counter.value c
  | Some _ | None -> 0

let gauge_value t key =
  match Hashtbl.find_opt t.metrics key with
  | Some (M_gauge g) -> Gauge.value g
  | Some _ | None -> 0.0

let histogram_count t key =
  match Hashtbl.find_opt t.metrics key with
  | Some (M_histo h) -> Histo.count h
  | Some _ | None -> 0

let histogram_sum t key =
  match Hashtbl.find_opt t.metrics key with
  | Some (M_histo h) -> Histo.sum h
  | Some _ | None -> 0.0

let histogram_quantile t key q =
  match Hashtbl.find_opt t.metrics key with
  | Some (M_histo h) -> Histo.quantile h q
  | Some _ | None -> Float.nan

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Counter.reset c
      | M_gauge g -> Gauge.reset g
      | M_histo h -> Histo.reset h
      | M_span s -> Span.reset s)
    t.metrics

let sorted_metrics t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.metrics [])

(* ------------------------------------------------------------------ *)
(* Text sink                                                           *)
(* ------------------------------------------------------------------ *)

let fnum v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let pp_text ppf t =
  let metrics = sorted_metrics t in
  let pick f = List.filter_map (fun (k, m) -> f k m) metrics in
  let counters = pick (fun k -> function M_counter c -> Some (k, c) | _ -> None) in
  let gauges = pick (fun k -> function M_gauge g -> Some (k, g) | _ -> None) in
  let histos = pick (fun k -> function M_histo h -> Some (k, h) | _ -> None) in
  let spans = pick (fun k -> function M_span s -> Some (k, s) | _ -> None) in
  let right = Tablefmt.Right and left = Tablefmt.Left in
  if counters <> [] then begin
    let tbl =
      Tablefmt.create
        ~title:(Printf.sprintf "%s counters" t.r_name)
        [ ("counter", left); ("value", right) ]
    in
    List.iter
      (fun (k, c) -> Tablefmt.add_row tbl [ k; string_of_int (Counter.value c) ])
      counters;
    Tablefmt.output ppf tbl
  end;
  if gauges <> [] then begin
    let tbl =
      Tablefmt.create
        ~title:(Printf.sprintf "%s gauges" t.r_name)
        [ ("gauge", left); ("value", right) ]
    in
    List.iter (fun (k, g) -> Tablefmt.add_row tbl [ k; fnum (Gauge.value g) ]) gauges;
    Tablefmt.output ppf tbl
  end;
  if histos <> [] then begin
    let tbl =
      Tablefmt.create
        ~title:(Printf.sprintf "%s histograms" t.r_name)
        [
          ("histogram", left); ("count", right); ("sum", right); ("min", right);
          ("mean", right); ("p50", right); ("p95", right); ("p99", right);
          ("max", right);
        ]
    in
    List.iter
      (fun (k, h) ->
        Tablefmt.add_row tbl
          [
            k;
            string_of_int (Histo.count h);
            fnum (Histo.sum h);
            fnum (Histo.min_value h);
            fnum (Histo.mean h);
            fnum (Histo.quantile h 0.50);
            fnum (Histo.quantile h 0.95);
            fnum (Histo.quantile h 0.99);
            fnum (Histo.max_value h);
          ])
      histos;
    Tablefmt.output ppf tbl
  end;
  if spans <> [] then begin
    let tbl =
      Tablefmt.create
        ~title:(Printf.sprintf "%s spans" t.r_name)
        [ ("span", left); ("count", right); ("total_s", right); ("self_s", right) ]
    in
    List.iter
      (fun (k, s) ->
        Tablefmt.add_row tbl
          [
            k; string_of_int (Span.count s);
            Printf.sprintf "%.6f" (Span.total s);
            Printf.sprintf "%.6f" (Span.self s);
          ])
      spans;
    Tablefmt.output ppf tbl
  end

(* ------------------------------------------------------------------ *)
(* JSON sink (via the dependency-free Qopt_util.Json document model)   *)
(* ------------------------------------------------------------------ *)

module Json = Qopt_util.Json

let json_value t =
  let metrics = sorted_metrics t in
  let section f = Json.Obj (List.filter_map (fun (k, m) -> Option.map (fun v -> (k, v)) (f m)) metrics) in
  Json.Obj
    [
      ("registry", Json.Str t.r_name);
      ( "counters",
        section (function
          | M_counter c -> Some (Json.int (Counter.value c))
          | _ -> None) );
      ( "gauges",
        section (function
          | M_gauge g -> Some (Json.Num (Gauge.value g))
          | _ -> None) );
      ( "histograms",
        section (function
          | M_histo h ->
            Some
              (Json.Obj
                 [
                   ("count", Json.int (Histo.count h));
                   ("sum", Json.Num (Histo.sum h));
                   ("min", Json.Num (Histo.min_value h));
                   ("mean", Json.Num (Histo.mean h));
                   ("p50", Json.Num (Histo.quantile h 0.50));
                   ("p95", Json.Num (Histo.quantile h 0.95));
                   ("p99", Json.Num (Histo.quantile h 0.99));
                   ("max", Json.Num (Histo.max_value h));
                 ])
          | _ -> None) );
      ( "spans",
        section (function
          | M_span s ->
            Some
              (Json.Obj
                 [
                   ("count", Json.int (Span.count s));
                   ("total_s", Json.Num (Span.total s));
                   ("self_s", Json.Num (Span.self s));
                 ])
          | _ -> None) );
    ]

let to_json t = Json.to_string (json_value t)
