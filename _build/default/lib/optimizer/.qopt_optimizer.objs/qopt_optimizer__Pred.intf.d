lib/optimizer/pred.mli: Colref Format Qopt_util
