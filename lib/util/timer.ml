external monotonic_now : unit -> float = "qopt_monotonic_now"

let now () = Unix.gettimeofday ()

let time f =
  let t0 = monotonic_now () in
  let result = f () in
  let t1 = monotonic_now () in
  (result, t1 -. t0)

let time_median ?(repeats = 3) f =
  let repeats = max 1 repeats in
  let result = ref None in
  let times = ref [] in
  for _ = 1 to repeats do
    let r, dt = time f in
    result := Some r;
    times := dt :: !times
  done;
  match !result with
  | None -> assert false
  | Some r -> (r, Stats.median !times)

type bucket = { mutable total : float }

let bucket () = { total = 0.0 }

let add_to b f =
  let r, dt = time f in
  b.total <- b.total +. dt;
  r

let elapsed b = b.total

let reset b = b.total <- 0.0
