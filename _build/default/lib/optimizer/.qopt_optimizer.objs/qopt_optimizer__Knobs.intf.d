lib/optimizer/knobs.mli: Format
