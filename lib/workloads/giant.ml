module C = Qopt_catalog
module O = Qopt_optimizer
module Rng = Qopt_util.Rng

type shape =
  | Chain
  | Clique
  | Cycle
  | Star
  | Snowflake of int

let max_tables = Qopt_util.Bitset.max_elt + 1

let shape_name = function
  | Chain -> "chain"
  | Clique -> "clique"
  | Cycle -> "cycle"
  | Star -> "star"
  | Snowflake b -> Printf.sprintf "snowflake%d" b

let validate shape n =
  let floor = match shape with Cycle -> 3 | _ -> 2 in
  if n < floor then
    invalid_arg
      (Printf.sprintf "Giant.block: %s needs at least %d tables (got %d)"
         (shape_name shape) floor n);
  if n > max_tables then
    invalid_arg
      (Printf.sprintf
         "Giant.block: %d tables exceeds the %d-table bitset limit \
          (Qopt_util.Bitset is a single word; see ROADMAP wide-bitset item)"
         n max_tables);
  match shape with
  | Snowflake b when b < 1 ->
    invalid_arg (Printf.sprintf "Giant.block: snowflake arity %d < 1" b)
  | _ -> ()

(* Join-graph edges as quantifier index pairs (i < j). *)
let edges shape n =
  match shape with
  | Chain -> List.init (n - 1) (fun i -> (i, i + 1))
  | Cycle -> (0, n - 1) :: List.init (n - 1) (fun i -> (i, i + 1))
  | Star -> List.init (n - 1) (fun i -> (0, i + 1))
  | Snowflake b ->
    (* Satellites 1..n-1 fill b branches round-robin: satellite m extends
       the branch of m-b, and the first b satellites attach to the center. *)
    List.init (n - 1) (fun i ->
        let m = i + 1 in
        if m <= b then (0, m) else (m - b, m))
  | Clique ->
    List.concat
      (List.init n (fun i -> List.init (n - 1 - i) (fun k -> (i, i + 1 + k))))

let edge_count shape n =
  validate shape n;
  match shape with
  | Chain | Star | Snowflake _ -> n - 1
  | Cycle -> n
  | Clique -> n * (n - 1) / 2

(* Secondary join columns mirror the synthetic workloads: low, decreasing
   distinct counts so extra predicates thin intermediate results without
   collapsing them below the Cartesian threshold. *)
let join_cols = [| "j1"; "j2"; "j3"; "j4"; "j5" |]

let secondary_distinct = [| 200.0; 100.0; 50.0; 20.0 |]

let rows i = 4_000.0 *. float_of_int (1 + (i mod 8))

let giant_table ~partitioned i =
  let rows = rows i in
  let cols =
    C.Column.make ~rows ~distinct:rows "pk"
    :: C.Column.make ~rows ~distinct:rows "j1"
    :: List.init 4 (fun k ->
           C.Column.make ~rows ~distinct:secondary_distinct.(k)
             (Printf.sprintf "j%d" (k + 2)))
    @ [
        C.Column.make ~rows ~distinct:1000.0 "v1";
        C.Column.make ~rows ~distinct:10.0 "v2";
      ]
  in
  let partition = if partitioned then Some (C.Partition_spec.hash [ "j1" ]) else None in
  C.Table.make ~rows ~name:(Printf.sprintf "g%d" i) ~primary_key:[ "pk" ]
    ?partition cols

let schema ?(partitioned = false) () =
  C.Schema.of_tables (List.init max_tables (giant_table ~partitioned))

let block ?(seed = 0) ?(partitioned = false) shape n =
  validate shape n;
  let rng = Rng.create seed in
  (* Which n of the 62 catalog tables participate is itself seeded. *)
  let pool = Array.init max_tables (giant_table ~partitioned) in
  Rng.shuffle rng pool;
  let quantifiers = List.init n (fun i -> O.Quantifier.make i pool.(i)) in
  let preds =
    List.map
      (fun (i, j) ->
        let col = Rng.pick rng join_cols in
        O.Pred.Eq_join (O.Colref.make i col, O.Colref.make j col))
      (edges shape n)
    @ [
        O.Pred.Local_cmp
          ( O.Colref.make 0 "v2",
            O.Pred.Eq,
            float_of_int (1 + Rng.int rng 9) );
      ]
  in
  let name = Printf.sprintf "giant_%s_%d" (shape_name shape) n in
  let b =
    O.Query_block.make ~name
      ~order_by:[ O.Colref.make 0 "v1" ]
      ~quantifiers ~preds ()
  in
  if not (O.Query_block.is_connected b) then
    invalid_arg (Printf.sprintf "Giant.block: %s is not connected" name);
  b

let workload ?(partitioned = false) ?(seed = 0) () =
  let q shape n =
    let b = block ~seed ~partitioned shape n in
    Workload.query b.O.Query_block.name b
  in
  let queries =
    List.map (q Chain) [ 20; 30; 40; 50 ]
    @ List.map (q Cycle) [ 20; 30 ]
    @ List.map (q Star) [ 20; 30 ]
    @ List.map (q (Snowflake 4)) [ 24; 36 ]
    @ List.map (q Clique) [ 20; 30; 40; 50 ]
  in
  Workload.make ~name:"giant" ~schema:(schema ~partitioned ()) queries
