test/t_sql.ml: Alcotest List Qopt_catalog Qopt_optimizer Qopt_sql Qopt_util
