(** Join methods and their property-propagation classes (Table 2).

    {v
      Join method | Order    | Partition
      NLJN        | full     | full
      MGJN        | partial  | full
      HSJN        | none     | full
    v}

    A nested-loops join always propagates its outer's order; a sort-merge
    join only propagates orders on its own join columns (plus coverage); a
    hash join destroys order.  All methods propagate the partition of the
    (re)partitioned inputs. *)

type t =
  | NLJN  (** nested-loops join *)
  | MGJN  (** sort-merge join *)
  | HSJN  (** hash join *)

type propagation =
  | Full
  | Partial
  | None_

val all : t list
(** [[NLJN; MGJN; HSJN]]. *)

val order_propagation : t -> propagation

val partition_propagation : t -> propagation

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
