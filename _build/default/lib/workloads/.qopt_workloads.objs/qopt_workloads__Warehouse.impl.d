lib/workloads/warehouse.ml: List Qopt_catalog Qopt_sql Workload
