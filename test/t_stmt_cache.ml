(* The statement-cache baseline (Section 1.2): structural signatures,
   hit/miss accounting, and the abstraction boundary — which queries are
   "similar" enough to share a cached compile time, and which must not
   collide. *)

module O = Qopt_optimizer
module Obs = Qopt_obs
module SC = Cote.Stmt_cache

let t name f = Alcotest.test_case name `Quick f

let sig_eq = Alcotest.(check string) "signatures equal"

let sig_ne msg a b =
  if String.equal a b then
    Alcotest.failf "%s: signatures unexpectedly collide: %s" msg a

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let accounting_tests =
  [
    t "miss then record then hit" (fun () ->
        let cache = SC.create () in
        let q = Helpers.chain 3 in
        Alcotest.(check (option (float 0.0))) "cold miss" None (SC.lookup cache q);
        SC.record cache q 0.125;
        Alcotest.(check (option (float 0.0)))
          "hit returns the recorded time" (Some 0.125) (SC.lookup cache q);
        Alcotest.(check int) "hits" 1 (SC.hits cache);
        Alcotest.(check int) "misses" 1 (SC.misses cache);
        Alcotest.(check int) "size" 1 (SC.size cache));
    t "re-recording replaces, not duplicates" (fun () ->
        let cache = SC.create () in
        let q = Helpers.chain 3 in
        SC.record cache q 0.1;
        SC.record cache q 0.2;
        Alcotest.(check int) "size" 1 (SC.size cache);
        Alcotest.(check (option (float 0.0)))
          "latest time wins" (Some 0.2) (SC.lookup cache q));
    t "distinct queries occupy distinct slots" (fun () ->
        let cache = SC.create () in
        SC.record cache (Helpers.chain 3) 0.1;
        SC.record cache (Helpers.chain 4) 0.2;
        SC.record cache (Helpers.star_block 4) 0.3;
        Alcotest.(check int) "size" 3 (SC.size cache));
    t "obs counters track hits, misses and size" (fun () ->
        Obs.Control.with_enabled true (fun () ->
            let reg = Obs.Registry.default in
            let h0 = Obs.Registry.counter_value reg "stmt_cache.hits" in
            let m0 = Obs.Registry.counter_value reg "stmt_cache.misses" in
            let cache = SC.create () in
            let q = Helpers.chain 3 in
            ignore (SC.lookup cache q);
            SC.record cache q 0.1;
            ignore (SC.lookup cache q);
            ignore (SC.lookup cache q);
            Alcotest.(check int) "hits delta" 2
              (Obs.Registry.counter_value reg "stmt_cache.hits" - h0);
            Alcotest.(check int) "misses delta" 1
              (Obs.Registry.counter_value reg "stmt_cache.misses" - m0);
            Alcotest.(check (float 0.0)) "size gauge" 1.0
              (Obs.Registry.gauge_value reg "stmt_cache.size")));
  ]

(* ------------------------------------------------------------------ *)
(* Signature invariance: what counts as "the same query"               *)
(* ------------------------------------------------------------------ *)

(* Rebuild a block with its quantifier list permuted and every predicate's
   quantifier indices remapped accordingly.  A structural signature must not
   depend on the arbitrary order quantifiers come in. *)
let permute_block perm (b : O.Query_block.t) =
  let n = O.Query_block.n_quantifiers b in
  assert (Array.length perm = n);
  (* perm.(new_index) = old_index; inverse maps old -> new. *)
  let inv = Array.make n 0 in
  Array.iteri (fun new_i old_i -> inv.(old_i) <- new_i) perm;
  let quantifiers =
    List.init n (fun new_i ->
        let old_q = O.Query_block.quantifier b perm.(new_i) in
        O.Quantifier.make new_i old_q.O.Quantifier.table)
  in
  let recol (c : O.Colref.t) = O.Colref.make inv.(c.O.Colref.q) c.O.Colref.col in
  let repred = function
    | O.Pred.Eq_join (l, r) -> O.Pred.Eq_join (recol l, recol r)
    | O.Pred.Local_cmp (c, op, v) -> O.Pred.Local_cmp (recol c, op, v)
    | O.Pred.Local_in (c, k) -> O.Pred.Local_in (recol c, k)
    | O.Pred.Expensive (ts, s, c) ->
      O.Pred.Expensive
        (Qopt_util.Bitset.of_list
           (List.map (fun q -> inv.(q)) (Qopt_util.Bitset.elements ts)),
         s, c)
  in
  O.Query_block.make ~name:(b.O.Query_block.name ^ "-permuted")
    ~group_by:(List.map recol b.O.Query_block.group_by)
    ~order_by:(List.map recol b.O.Query_block.order_by)
    ?first_n:b.O.Query_block.first_n ~quantifiers
    ~preds:(List.map repred b.O.Query_block.preds)
    ()

let with_local preds b =
  let open O.Query_block in
  make ~name:b.name ~group_by:b.group_by ~order_by:b.order_by
    ?first_n:b.first_n
    ~quantifiers:(List.init (n_quantifiers b) (quantifier b))
    ~preds:(b.preds @ preds) ()

let invariance_tests =
  [
    t "signature survives quantifier reordering" (fun () ->
        let b = Helpers.chain ~extra:1 ~group_by:true ~order_by:true 5 in
        List.iter
          (fun perm -> sig_eq (SC.signature b) (SC.signature (permute_block perm b)))
          [ [| 4; 3; 2; 1; 0 |]; [| 2; 0; 4; 1; 3 |]; [| 1; 0; 2; 4; 3 |] ]);
    t "a reordered query is a cache hit" (fun () ->
        let cache = SC.create () in
        let b = Helpers.star_block 5 in
        SC.record cache b 0.5;
        Alcotest.(check (option (float 0.0)))
          "permuted lookup hits" (Some 0.5)
          (SC.lookup cache (permute_block [| 3; 1; 4; 0; 2 |] b)));
    t "literal values are abstracted away" (fun () ->
        let b = Helpers.chain 3 in
        let q1 = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Le, 10.0) ] b in
        let q2 = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Le, 99.0) ] b in
        sig_eq (SC.signature q1) (SC.signature q2));
    t "predicate order does not matter" (fun () ->
        let b = Helpers.chain 4 in
        let p1 = O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Eq, 1.0) in
        let p2 = O.Pred.Local_cmp (Helpers.cr 2 "j2", O.Pred.Gt, 5.0) in
        sig_eq
          (SC.signature (with_local [ p1; p2 ] b))
          (SC.signature (with_local [ p2; p1 ] b)));
  ]

(* ------------------------------------------------------------------ *)
(* Non-collision: structurally different queries stay apart            *)
(* ------------------------------------------------------------------ *)

let non_collision_tests =
  [
    t "join shape distinguishes queries over the same tables" (fun () ->
        (* chain t0-t1-t2 vs star centered on t0 vs cycle, all on the same
           three tables: same table multiset, different join graphs. *)
        let quantifiers () =
          List.init 3 (fun i ->
              O.Quantifier.make i
                (Helpers.table ~rows:(1000.0 *. float_of_int (i + 1))
                   (Printf.sprintf "t%d" i)))
        in
        let mk name preds =
          O.Query_block.make ~name ~quantifiers:(quantifiers ()) ~preds ()
        in
        let j a b = O.Pred.Eq_join (Helpers.cr a "j1", Helpers.cr b "j1") in
        let chain = mk "chain" [ j 0 1; j 1 2 ] in
        let star = mk "star" [ j 0 1; j 0 2 ] in
        let cycle = mk "cycle" [ j 0 1; j 1 2; j 0 2 ] in
        sig_ne "chain vs star" (SC.signature chain) (SC.signature star);
        sig_ne "chain vs cycle" (SC.signature chain) (SC.signature cycle);
        sig_ne "star vs cycle" (SC.signature star) (SC.signature cycle));
    t "comparison class matters: Eq vs range" (fun () ->
        let b = Helpers.chain 3 in
        let eq = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Eq, 1.0) ] b in
        let le = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Le, 1.0) ] b in
        sig_ne "Eq vs Le" (SC.signature eq) (SC.signature le));
    t "strict and non-strict comparisons stay apart" (fun () ->
        (* Regression: Lt/Le folded to "<" and Gt/Ge to ">" — a recorded
           actual (or plan-cache envelope label) for [a < 5] silently
           served [a <= 5]. *)
        let b = Helpers.chain 3 in
        let cmp op = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", op, 5.0) ] b in
        sig_ne "Lt vs Le"
          (SC.signature (cmp O.Pred.Lt))
          (SC.signature (cmp O.Pred.Le));
        sig_ne "Gt vs Ge"
          (SC.signature (cmp O.Pred.Gt))
          (SC.signature (cmp O.Pred.Ge));
        sig_ne "Lt vs Gt"
          (SC.signature (cmp O.Pred.Lt))
          (SC.signature (cmp O.Pred.Gt));
        sig_ne "Le vs Ge"
          (SC.signature (cmp O.Pred.Le))
          (SC.signature (cmp O.Pred.Ge)));
    t "expensive predicates key on their parameters" (fun () ->
        (* Regression: the Expensive signature covered only the table
           bitset, so two expensive predicates over the same tables but
           with different selectivity/per-tuple cost collided. *)
        let b = Helpers.chain 3 in
        let exp ~sel ~cost =
          with_local [ O.Pred.Expensive (Qopt_util.Bitset.singleton 0, sel, cost) ] b
        in
        sig_ne "selectivity differs"
          (SC.signature (exp ~sel:0.1 ~cost:2.0))
          (SC.signature (exp ~sel:0.5 ~cost:2.0));
        sig_ne "per-tuple cost differs"
          (SC.signature (exp ~sel:0.1 ~cost:2.0))
          (SC.signature (exp ~sel:0.1 ~cost:8.0));
        sig_eq
          (SC.signature (exp ~sel:0.1 ~cost:2.0))
          (SC.signature (exp ~sel:0.1 ~cost:2.0)));
    t "tagged entries partition the key space" (fun () ->
        (* The server tags by chosen optimization level: an actual
           recorded at a downgraded level must not refine a full-level
           estimate (and vice versa). *)
        let cache = SC.create () in
        let q = Helpers.chain 3 in
        SC.record cache ~tag:"greedy" q 0.001;
        Alcotest.(check (option (float 0.0)))
          "full-level lookup misses" None (SC.lookup cache ~tag:"full" q);
        Alcotest.(check (option (float 0.0)))
          "untagged lookup misses" None (SC.lookup cache q);
        Alcotest.(check (option (float 0.0)))
          "same-tag lookup hits" (Some 0.001)
          (SC.lookup cache ~tag:"greedy" q));
    t "IN-list arity matters" (fun () ->
        let b = Helpers.chain 3 in
        let i3 = with_local [ O.Pred.Local_in (Helpers.cr 0 "v", 3) ] b in
        let i7 = with_local [ O.Pred.Local_in (Helpers.cr 0 "v", 7) ] b in
        sig_ne "IN 3 vs IN 7" (SC.signature i3) (SC.signature i7));
    t "grouping, ordering and LIMIT all matter" (fun () ->
        let plain = Helpers.chain 3 in
        let grouped = Helpers.chain ~group_by:true 3 in
        let ordered = Helpers.chain ~order_by:true 3 in
        let limited =
          O.Query_block.make ~name:"lim" ~first_n:10
            ~quantifiers:
              (List.init 3 (fun i -> O.Query_block.quantifier plain i))
            ~preds:plain.O.Query_block.preds ()
        in
        sig_ne "plain vs grouped" (SC.signature plain) (SC.signature grouped);
        sig_ne "plain vs ordered" (SC.signature plain) (SC.signature ordered);
        sig_ne "grouped vs ordered" (SC.signature grouped) (SC.signature ordered);
        sig_ne "plain vs limited" (SC.signature plain) (SC.signature limited));
    t "chain length matters" (fun () ->
        sig_ne "3 vs 4"
          (SC.signature (Helpers.chain 3))
          (SC.signature (Helpers.chain 4)));
    t "extra join predicates matter" (fun () ->
        sig_ne "0 vs 1 extra"
          (SC.signature (Helpers.chain 4))
          (SC.signature (Helpers.chain ~extra:1 4)));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck: predicate signatures collide exactly on structural equality  *)
(* ------------------------------------------------------------------ *)

(* Predicate signatures abstract literal values and nothing else: two
   generated predicates share a pred_signature (and their blocks share a
   signature) iff they are structurally equal modulo the comparison
   literal.  This pins both historical collisions at once — Lt/Le (and
   Gt/Ge) folding, and Expensive ignoring its selectivity/cost. *)

let prop name ?(count = 300) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let qc_block = Helpers.chain 4

let qc_ops = [| O.Pred.Eq; O.Pred.Lt; O.Pred.Le; O.Pred.Gt; O.Pred.Ge |]

let qc_sels = [| 0.05; 0.25; 0.6 |]

let qc_costs = [| 1.0; 3.5; 9.0 |]

let qc_lits = [| 1.0; 5.0; 42.0 |]

type pred_spec =
  | P_cmp of int * string * int * int  (* quantifier, col, op, literal *)
  | P_in of int * string * int  (* quantifier, col, IN arity *)
  | P_exp of int list * int * int  (* sorted table set, sel, cost *)
  | P_join of int * int * string  (* q1 < q2, column *)

(* Structural identity under the documented abstraction: only the
   comparison literal is erased. *)
let canon = function
  | P_cmp (q, c, op, _) -> P_cmp (q, c, op, 0)
  | spec -> spec

let to_pred = function
  | P_cmp (q, c, op, l) ->
    O.Pred.Local_cmp (Helpers.cr q c, qc_ops.(op), qc_lits.(l))
  | P_in (q, c, n) -> O.Pred.Local_in (Helpers.cr q c, n)
  | P_exp (ts, s, c) ->
    O.Pred.Expensive (Qopt_util.Bitset.of_list ts, qc_sels.(s), qc_costs.(c))
  | P_join (a, b, c) -> O.Pred.Eq_join (Helpers.cr a c, Helpers.cr b c)

let gen_pred_spec =
  let open QCheck2.Gen in
  let quantifier = int_range 0 3 in
  let column = oneofl [ "v"; "j2" ] in
  oneof
    [
      (let* q = quantifier in
       let* c = column in
       let* op = int_range 0 (Array.length qc_ops - 1) in
       let* l = int_range 0 (Array.length qc_lits - 1) in
       return (P_cmp (q, c, op, l)));
      (let* q = quantifier in
       let* c = column in
       let* n = int_range 1 6 in
       return (P_in (q, c, n)));
      (let* mask = int_range 1 15 in
       let ts = List.filter (fun i -> mask land (1 lsl i) <> 0) [ 0; 1; 2; 3 ] in
       let* s = int_range 0 (Array.length qc_sels - 1) in
       let* c = int_range 0 (Array.length qc_costs - 1) in
       return (P_exp (ts, s, c)));
      (let* a = quantifier in
       let* b = quantifier in
       let b = if a = b then (a + 1) mod 4 else b in
       let* c = column in
       return (P_join (min a b, max a b, c)));
    ]

let property_tests =
  [
    prop "pred_signature equality = structural equality modulo literal"
      QCheck2.Gen.(pair gen_pred_spec gen_pred_spec)
      (fun (s1, s2) ->
        let sg s = SC.pred_signature qc_block (to_pred s) in
        String.equal (sg s1) (sg s2) = (canon s1 = canon s2));
    prop "block signature equality follows the predicate's" ~count:150
      QCheck2.Gen.(pair gen_pred_spec gen_pred_spec)
      (fun (s1, s2) ->
        let sg s = SC.signature (with_local [ to_pred s ] qc_block) in
        String.equal (sg s1) (sg s2) = (canon s1 = canon s2));
  ]

let suite =
  accounting_tests @ invariance_tests @ non_collision_tests @ property_tests
