examples/midquery_reopt.mli:
