module Bitset = Qopt_util.Bitset
module Timer = Qopt_util.Timer
module Obs = Qopt_obs

(* Process-wide compile metrics (no-ops unless Qopt_obs is enabled). *)
let m_queries = Obs.Registry.counter Obs.Registry.default "optimizer.queries"

let m_compile_s = Obs.Registry.histogram Obs.Registry.default "optimizer.compile_s"

let m_span = Obs.Registry.span Obs.Registry.default "optimizer.compile"

let m_memo_bytes = Obs.Registry.gauge Obs.Registry.default "optimizer.memo_bytes"

let m_retries = Obs.Registry.counter Obs.Registry.default "optimizer.retries"

let m_alloc = Obs.Registry.counter Obs.Registry.default "plan_gen.alloc_bytes"

type result = {
  best : Plan.t option;
  elapsed : float;
  joins : int;
  generated : Memo.counts;
  scan_plans : int;
  kept : int;
  entries : int;
  pruned : int;
  breakdown : Instrument.snapshot;
  memo_bytes : float;
  mv_tests : int;
  mv_matches : int;
}

(* Final SORT / GROUP BY operators on top of the winning join plan.  Their
   planning cost is negligible (two group-by plans, one sort — part of the
   "other" slice of Figure 2), but they make [best] a complete plan. *)
let finish env block (plan : Plan.t) =
  let params = Cost_model.params env in
  let equiv = Equiv.of_preds (Query_block.join_preds block) in
  let width = Cost_model.row_width block plan.Plan.tables in
  let plan =
    match block.Query_block.group_by with
    | [] -> plan
    | cols ->
      let grouping = Order_prop.make Grouping cols in
      let pre_sorted = Order_prop.satisfied_by equiv grouping plan.Plan.order in
      let sort_based =
        if pre_sorted then plan.Plan.cost +. (plan.Plan.card *. 0.002)
        else
          plan.Plan.cost
          +. Cost_model.sort params ~rows:plan.Plan.card ~width
          +. (plan.Plan.card *. 0.002)
      in
      let hash_based = plan.Plan.cost +. (plan.Plan.card *. 0.004) in
      if sort_based <= hash_based then
        if pre_sorted then
          (* The input already delivers the grouping order: aggregate on top
             without a SORT operator, keeping the plan's order — and its
             pipelinability, which the top-N discount depends on. *)
          { plan with Plan.cost = sort_based }
        else
          {
            plan with
            Plan.op = Plan.Sort plan;
            order = Order_prop.canonical equiv grouping;
            cost = sort_based;
          }
      else { plan with Plan.op = plan.Plan.op; cost = hash_based; order = [] }
  in
  match block.Query_block.order_by with
  | [] -> plan
  | cols ->
    let ordering = Order_prop.make Ordering cols in
    if Order_prop.satisfied_by equiv ordering plan.Plan.order then plan
    else
      {
        plan with
        Plan.op = Plan.Sort plan;
        order = Order_prop.canonical equiv ordering;
        cost = plan.Plan.cost +. Cost_model.sort params ~rows:plan.Plan.card ~width;
      }

(* The top-N adjustment: a pipelinable plan under LIMIT n stops early, so
   only a fraction of its cost is paid. *)
let topn_adjusted_cost block (p : Plan.t) =
  match block.Query_block.first_n with
  | None -> p.Plan.cost
  | Some n ->
    if Plan.pipelinable p then
      let frac = Float.min 1.0 (float_of_int n /. Float.max 1.0 p.Plan.card) in
      p.Plan.cost *. Float.max 0.05 frac
    else p.Plan.cost

(* Pick the top plan by its cost *after* the final GROUP BY / ORDER BY
   operators and the top-N early-termination benefit: for a LIMIT query a
   pipelinable plan that avoids the final sort can beat a cheaper blocking
   plan. *)
let best_for_block env block entry =
  let best = ref None in
  List.iter
    (fun (p : Plan.t) ->
      let finished = finish env block p in
      let adjusted = topn_adjusted_cost block finished in
      match !best with
      | Some (_, c) when c <= adjusted -> ()
      | Some _ | None -> best := Some (finished, adjusted))
    (Memo.plans entry);
  Option.map fst !best

(* The budget check rides the consumer callbacks: entries grow in on_entry,
   kept plans in on_join, and both reads are O(1) counters — so a capped
   pass costs two int compares per event and an uncapped pass (the common
   case) is never wrapped at all, keeping the hot path and the differential
   suites bit-for-bit unchanged. *)
let budgeted_consumer budget memo (consumer : Enumerator.consumer) =
  let check () =
    Budget.check budget ~entries:(Memo.n_entries memo) ~kept:(Memo.kept_plans memo)
  in
  {
    Enumerator.on_entry =
      (fun e ->
        consumer.Enumerator.on_entry e;
        check ());
    on_join =
      (fun ev ->
        consumer.Enumerator.on_join ev;
        check ());
  }

let run_block ?budget ?views env knobs block =
  let memo = Memo.create block in
  let instr = Instrument.create () in
  let gen = Plan_gen.create ?views env memo instr in
  let consumer = Plan_gen.consumer gen in
  let consumer =
    match budget with
    | Some b when not (Budget.is_unlimited b) -> budgeted_consumer b memo consumer
    | Some _ | None -> consumer
  in
  let alloc0 = if !Obs.Control.on then Gc.allocated_bytes () else 0.0 in
  let (), elapsed =
    Timer.time (fun () ->
        Obs.Span.time m_span (fun () ->
            Enumerator.run ~knobs ~card_of:(Plan_gen.card_of gen) memo consumer))
  in
  Instrument.set_total instr elapsed;
  if !Obs.Control.on then
    Obs.Counter.add m_alloc
      (int_of_float (Gc.allocated_bytes () -. alloc0));
  Obs.Histo.observe m_compile_s elapsed;
  let stats = Memo.stats memo in
  let top = Memo.find_opt memo (Query_block.all_tables block) in
  let best =
    match top with
    | Some entry -> best_for_block env block entry
    | None -> None
  in
  let result =
    {
      best;
      elapsed;
      joins = stats.Memo.joins_enumerated;
      generated = stats.Memo.generated;
      scan_plans = stats.Memo.scan_plans;
      kept = Memo.kept_plans memo;
      entries = Memo.n_entries memo;
      pruned = stats.Memo.pruned;
      breakdown = Instrument.snapshot instr;
      memo_bytes = Memo.memo_bytes memo;
      mv_tests = Plan_gen.mv_tests gen;
      mv_matches = Plan_gen.mv_matches gen;
    }
  in
  (result, top <> None)

let add_counts (a : Memo.counts) (b : Memo.counts) =
  {
    Memo.nljn = a.Memo.nljn + b.Memo.nljn;
    Memo.mgjn = a.Memo.mgjn + b.Memo.mgjn;
    Memo.hsjn = a.Memo.hsjn + b.Memo.hsjn;
  }

exception Interrupted

let no_interrupt () = false

let check_interrupt interrupt = if interrupt () then raise Interrupted

let optimize_block ?(interrupt = no_interrupt) ?budget ?views env knobs block =
  check_interrupt interrupt;
  let result, reached_top = run_block ?budget ?views env knobs block in
  if reached_top || Query_block.n_quantifiers block <= 1 then result
  else begin
    (* The knobs left the query unplannable (disconnected graph without
       Cartesian products, or an over-tight inner limit): retry permissively. *)
    Obs.Counter.incr m_retries;
    check_interrupt interrupt;
    let retry, _ = run_block ?budget ?views env (Knobs.permissive knobs) block in
    (* The failed pass is real compile time — Estimator.estimate_block times
       both passes, and COTE accuracy depends on actuals doing the same.
       Fold the first pass's elapsed and work counters into the retry
       result; plan-state snapshots (best, kept, memo_bytes) describe the
       surviving MEMO and stay the retry's. *)
    {
      retry with
      elapsed = result.elapsed +. retry.elapsed;
      joins = result.joins + retry.joins;
      generated = add_counts result.generated retry.generated;
      scan_plans = result.scan_plans + retry.scan_plans;
      entries = result.entries + retry.entries;
      pruned = result.pruned + retry.pruned;
      breakdown = Instrument.merge result.breakdown retry.breakdown;
      mv_tests = result.mv_tests + retry.mv_tests;
      mv_matches = result.mv_matches + retry.mv_matches;
    }
  end

let optimize env ?(interrupt = no_interrupt) ?budget ?(knobs = Knobs.default)
    ?views block =
  Obs.Counter.incr m_queries;
  let results = ref [] in
  Query_block.iter_blocks
    (fun b ->
      results := optimize_block ~interrupt ?budget ?views env knobs b :: !results)
    block;
  let result =
    match !results with
    | [] -> assert false
    | top :: rest ->
      (* [iter_blocks] visits children first, so the last result is the top
         block's. *)
      List.fold_left
        (fun acc r ->
          {
            best = acc.best;
            elapsed = acc.elapsed +. r.elapsed;
            joins = acc.joins + r.joins;
            generated = add_counts acc.generated r.generated;
            scan_plans = acc.scan_plans + r.scan_plans;
            kept = acc.kept + r.kept;
            entries = acc.entries + r.entries;
            pruned = acc.pruned + r.pruned;
            breakdown = Instrument.merge acc.breakdown r.breakdown;
            memo_bytes = acc.memo_bytes +. r.memo_bytes;
            mv_tests = acc.mv_tests + r.mv_tests;
            mv_matches = acc.mv_matches + r.mv_matches;
          })
        top rest
  in
  Obs.Gauge.set m_memo_bytes result.memo_bytes;
  result

type fallback = {
  fb_best : Plan.t option;
  fb_elapsed : float;
  fb_quantifiers : int;
  fb_edges : int;
  fb_restarts : int;
  fb_joins : int;
}

let optimize_fallback env ?(interrupt = no_interrupt) ?(seed = 0) ?(restarts = 0)
    block =
  Obs.Counter.incr m_queries;
  let last = ref None in
  let elapsed = ref 0.0 in
  let edges = ref 0 in
  let joins = ref 0 in
  let quants = ref 0 in
  Query_block.iter_blocks
    (fun b ->
      check_interrupt interrupt;
      let r = Spanning_tree.optimize ~seed ~restarts env b in
      elapsed := !elapsed +. r.Spanning_tree.st_elapsed;
      edges := !edges + r.Spanning_tree.st_edges;
      joins := !joins + r.Spanning_tree.st_joins;
      quants := !quants + Query_block.n_quantifiers b;
      last := Some (b, r.Spanning_tree.st_plan))
    block;
  Obs.Histo.observe m_compile_s !elapsed;
  let best =
    (* [iter_blocks] visits children first: the last block is the top one,
       and its plan gets the same final SORT / GROUP BY treatment the DP
       path applies in [best_for_block]. *)
    match !last with
    | Some (top, Some plan) -> Some (finish env top plan)
    | Some (_, None) | None -> None
  in
  {
    fb_best = best;
    fb_elapsed = !elapsed;
    fb_quantifiers = !quants;
    fb_edges = !edges;
    fb_restarts = restarts;
    fb_joins = !joins;
  }
