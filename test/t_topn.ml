(* The pipelinable property and top-N (LIMIT) queries. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

let scan q =
  {
    O.Plan.op = O.Plan.Seq_scan q;
    tables = Bitset.singleton q;
    order = [];
    partition = None;
    card = 100.0;
    cost = 10.0;
  }

let join m outer inner =
  {
    O.Plan.op = O.Plan.Join (m, outer, inner, []);
    tables = Bitset.union outer.O.Plan.tables inner.O.Plan.tables;
    order = [];
    partition = None;
    card = 100.0;
    cost = 30.0;
  }

let sort input = { input with O.Plan.op = O.Plan.Sort input }

let pipelinable_tests =
  [
    t "scans pipeline" (fun () ->
        Alcotest.(check bool) "scan" true (O.Plan.pipelinable (scan 0)));
    t "sort blocks" (fun () ->
        Alcotest.(check bool) "sort" false (O.Plan.pipelinable (sort (scan 0))));
    t "hash join blocks on its build" (fun () ->
        Alcotest.(check bool) "hsjn" false
          (O.Plan.pipelinable (join O.Join_method.HSJN (scan 0) (scan 1))));
    t "nested loops pipelines when inputs do" (fun () ->
        Alcotest.(check bool) "nljn" true
          (O.Plan.pipelinable (join O.Join_method.NLJN (scan 0) (scan 1)));
        Alcotest.(check bool) "nljn over sort" false
          (O.Plan.pipelinable (join O.Join_method.NLJN (sort (scan 0)) (scan 1))));
    t "merge join pipelines over pre-sorted inputs" (fun () ->
        Alcotest.(check bool) "mgjn" true
          (O.Plan.pipelinable (join O.Join_method.MGJN (scan 0) (scan 1))));
    t "repartition streams" (fun () ->
        let p = { (scan 0) with O.Plan.op = O.Plan.Repartition (scan 0) } in
        Alcotest.(check bool) "repart" true (O.Plan.pipelinable p));
  ]

let topn_block ?(n = 10) k =
  let base = Helpers.chain k in
  { base with O.Query_block.first_n = Some n }

let optimizer_tests =
  [
    t "first_n must be positive" (fun () ->
        try
          ignore
            (O.Query_block.make ~name:"bad" ~first_n:0
               ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:1.0 "x") ]
               ~preds:[] ());
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "LIMIT query keeps a pipelinable best plan" (fun () ->
        let r = O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs (topn_block 4) in
        match r.O.Optimizer.best with
        | Some p -> Alcotest.(check bool) "pipelines" true (O.Plan.pipelinable p)
        | None -> Alcotest.fail "expected plan");
    t "pipelinable plans survive cheaper blocking plans" (fun () ->
        let block = topn_block 3 in
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0; 1 ]) in
        let pipe_plan = join O.Join_method.NLJN (scan 0) (scan 1) in
        let blocking = { (join O.Join_method.HSJN (scan 0) (scan 1)) with O.Plan.cost = 5.0 } in
        O.Memo.insert_plan memo e blocking;
        O.Memo.insert_plan memo e pipe_plan;
        Alcotest.(check int) "both kept" 2 (List.length (O.Memo.plans e)));
    t "without LIMIT the blocking plan prunes the pipelinable one" (fun () ->
        let block = Helpers.chain 3 in
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0; 1 ]) in
        let pipe_plan = join O.Join_method.NLJN (scan 0) (scan 1) in
        let blocking = { (join O.Join_method.HSJN (scan 0) (scan 1)) with O.Plan.cost = 5.0 } in
        O.Memo.insert_plan memo e blocking;
        O.Memo.insert_plan memo e pipe_plan;
        Alcotest.(check int) "one kept" 1 (List.length (O.Memo.plans e)));
    t "LIMIT enlarges the generated plan space" (fun () ->
        let base = O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs (Helpers.chain 5) in
        let ltd = O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs (topn_block 5) in
        Alcotest.(check bool) "more or equal plans" true
          (O.Memo.counts_total ltd.O.Optimizer.generated
          >= O.Memo.counts_total base.O.Optimizer.generated));
    t "estimator tracks the LIMIT enlargement" (fun () ->
        let block = topn_block 5 in
        let r = O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs block in
        let e = Cote.Estimator.estimate ~knobs:Helpers.stable_knobs O.Env.serial block in
        let actual = float_of_int (O.Memo.counts_total r.O.Optimizer.generated) in
        let est = float_of_int (Cote.Estimator.total e) in
        Alcotest.(check bool)
          (Printf.sprintf "%g vs %g within 30%%" actual est)
          true
          (Float.abs (est -. actual) /. actual <= 0.30));
    t "pre-sorted GROUP BY keeps the plan pipelinable under LIMIT" (fun () ->
        (* An index on the grouping column delivers rows already grouped: the
           aggregate needs no SORT operator, so the plan keeps streaming and
           the top-N discount applies.  A regression here made [finish] wrap
           Plan.Sort around the winner even when the order was already
           satisfied, destroying pipelinability for GROUP BY + LIMIT. *)
        let tbl =
          Helpers.table ~rows:10000.0
            ~indexes:[ Qopt_catalog.Index.make ~name:"iv" [ "v" ] ]
            "g"
        in
        let block =
          O.Query_block.make ~name:"gl" ~first_n:5
            ~group_by:[ cr 0 "v" ]
            ~quantifiers:[ O.Quantifier.make 0 tbl ]
            ~preds:[ O.Pred.Local_cmp (cr 0 "v", O.Pred.Eq, 3.0) ]
            ()
        in
        let r = O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs block in
        match r.O.Optimizer.best with
        | None -> Alcotest.fail "expected plan"
        | Some p ->
          Alcotest.(check bool) "pipelines" true (O.Plan.pipelinable p);
          let grouping = O.Order_prop.make O.Order_prop.Grouping [ cr 0 "v" ] in
          Alcotest.(check bool) "delivers grouping order" true
            (O.Order_prop.satisfied_by O.Equiv.empty grouping p.O.Plan.order));
    t "best_pipelinable_plan" (fun () ->
        let block = topn_block 3 in
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e { (sort (scan 0)) with O.Plan.order = [ cr 0 "j1" ] };
        Alcotest.(check bool) "none yet" true
          (O.Memo.best_pipelinable_plan memo e = None);
        O.Memo.insert_plan memo e (scan 0);
        Alcotest.(check bool) "found" true
          (O.Memo.best_pipelinable_plan memo e <> None));
  ]

let sql_tests =
  [
    t "LIMIT parses and binds to first_n" (fun () ->
        let ast = Qopt_sql.Parser.parse "SELECT a FROM t LIMIT 10" in
        Alcotest.(check bool) "parsed" true (ast.Qopt_sql.Ast.sel_limit = Some 10));
    t "LIMIT round-trips through the pretty printer" (fun () ->
        let sql = "SELECT a FROM t WHERE a = 1 LIMIT 5" in
        let printed = Qopt_sql.Ast.to_string (Qopt_sql.Parser.parse sql) in
        Alcotest.(check bool) "mentions LIMIT" true (Helpers.contains printed "LIMIT 5");
        Alcotest.(check bool) "reparses" true
          ((Qopt_sql.Parser.parse printed).Qopt_sql.Ast.sel_limit = Some 5));
    t "LIMIT rejects junk" (fun () ->
        try
          ignore (Qopt_sql.Parser.parse "SELECT a FROM t LIMIT x");
          Alcotest.fail "expected Parser.Error"
        with Qopt_sql.Parser.Error _ -> ());
  ]

let suite = pipelinable_tests @ optimizer_tests @ sql_tests
