(** The compile-service wire protocol: requests and replies as JSON
    documents (framed by {!Wire}).

    Every request carries a client-chosen [id] echoed in its reply, so a
    client may pipeline requests on one connection and match replies even
    when shortest-estimated-job-first scheduling completes them out of
    order.

    Requests:
    {v
      {"op":"estimate","id":1,"sql":"SELECT ...","schema":"warehouse"}
      {"op":"compile","id":2,"sql":"...","schema":null,"deadline_ms":500}
      {"op":"stats","id":3}
      {"op":"shutdown","id":4}
    v}

    Replies are one of [estimate], [compile], [rejected] (admission
    control), [cancelled] (deadline or shutdown), [error] (parse/bind
    failure), [stats], or [ok] (shutdown acknowledgement). *)

module J = Qopt_util.Json

type request =
  | Estimate of { id : int; sql : string; schema : string option }
  | Compile of {
      id : int;
      sql : string;
      schema : string option;
      deadline_ms : float option;  (** relative to arrival, milliseconds *)
      estimate_hint_s : float option;
          (** predicted compilation seconds, computed upstream (the fleet
              router estimates once and forwards); a server started with
              trust-hints admits on this instead of re-running its own
              COTE pass.  Only rendered when present, so hint-less
              requests are byte-identical to the pre-fleet format. *)
    }
  | Stats of { id : int }
  | Shutdown of { id : int }

type estimate_body = {
  e_predicted_s : float;  (** predicted compilation seconds (COTE) *)
  e_level : string;  (** optimization level the prediction is for *)
  e_cache_hit : bool;  (** statement-cache refinement used *)
  e_joins : int;
  e_nljn : int;
  e_mgjn : int;
  e_hsjn : int;
  e_entries : int;
  e_estimation_s : float;  (** what the estimation itself cost *)
}

type compile_body = {
  c_plan : string option;  (** compact plan rendering, [None] if no plan *)
  c_cost : float;
  c_card : float;
  c_joins : int;
  c_kept : int;
  c_entries : int;
  c_elapsed_s : float;  (** actual compilation seconds *)
  c_predicted_s : float;  (** what the COTE predicted at admission *)
  c_level : string;
  c_queue_s : float;  (** time spent queued before a worker picked it up *)
  c_cache_hit : bool;
  c_plan_cached : bool;
      (** served from the plan cache — no optimizer pass ran at all
          (parsed with a [false] default, so older servers interoperate) *)
  c_regime : string;
      (** which compile regime produced the plan: ["dp"], ["greedy"], or
          ["dp_budget_fallback"] ({!Cote.Regime}) — parsed with a ["dp"]
          default, so older servers interoperate *)
}

type reply =
  | R_estimate of int * estimate_body
  | R_compile of int * compile_body
  | R_rejected of {
      id : int;
      reason : string;
      estimate_us : float;
      retry_after_us : float option;
          (** server's advice on how long to back off before retrying,
              derived from its admission state (how much estimated work
              is in flight).  Absent for rejections that retrying cannot
              cure (per-request ceiling, shutdown) and on replies from
              older servers; only rendered when present. *)
    }
  | R_cancelled of {
      id : int;
      reason : string;
      estimate_us : float;
      queue_s : float;
    }
  | R_error of { id : int; message : string }
  | R_stats of int * J.t
  | R_ok of int

val request_id : request -> int

val reply_id : reply -> int

val with_reply_id : reply -> int -> reply
(** The same reply under a different id — the fleet router remaps ids
    when multiplexing many client connections over one backend channel. *)

val request_to_json : request -> J.t

val request_of_json : J.t -> (request, string) result

val reply_to_json : reply -> J.t

val reply_of_json : J.t -> (reply, string) result
