(** Shared infrastructure for the experiment harness: environments,
    memoized per-workload measurements, and memoized time-model
    calibration. *)

module O = Qopt_optimizer
module W = Qopt_workloads

val serial : O.Env.t

val parallel : O.Env.t
(** Four logical nodes, as in the paper's experiments. *)

type measured = {
  m_query : W.Workload.query;
  m_real : O.Optimizer.result;  (** full optimization, timed *)
  m_est : Cote.Estimator.estimate;  (** plan-estimate mode, timed *)
}

val measure_workload : O.Env.t -> W.Workload.t -> measured list
(** Compiles and estimates every query of the workload.  Compile times are
    medians of up to 3 runs for sub-half-second queries and single runs for
    long ones.  Queries run through the {!Qopt_par} pool when
    [QOPT_DOMAINS] asks for more than one domain (results stay in workload
    order either way).  Results are memoized per (environment, workload
    name) for the lifetime of the process, since several figures share
    workloads. *)

val workload : O.Env.t -> string -> W.Workload.t
(** Workloads by the paper's names: ["linear"], ["star"], ["cycle"],
    ["real1"], ["real2"], ["random"], ["tpch"], ["tpch7"], ["calibration"].
    Parallel environments get the partitioned variants.  Memoized.
    Raises [Invalid_argument] on unknown names. *)

val model_for : O.Env.t -> Cote.Time_model.t
(** The plan-level time model fitted on the calibration workload for this
    environment (memoized). *)

val joins_model_for : O.Env.t -> Cote.Time_model.t
(** The joins-only baseline model fitted on the same training data. *)

val predicted_seconds : O.Env.t -> measured -> float
(** [model_for env] applied to the measurement's estimate. *)

val suffixed : O.Env.t -> string -> string
(** ["star" -> "star_s"/"star_p"], the paper's naming convention. *)

val err_summary : (float * float) list -> string
(** "mean |err| x.x%, max y.y%" over (actual, estimate) pairs. *)
