exception Framing_error of string

let max_frame = 16 * 1024 * 1024

let write oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  output_char oc '\n';
  flush oc

let read ic =
  match input_line ic with
  | exception End_of_file -> None
  | line -> (
    (* input_line strips '\n'; tolerate a '\r' from chatty clients. *)
    let line =
      if String.length line > 0 && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    match int_of_string_opt line with
    | None -> raise (Framing_error (Printf.sprintf "malformed length line %S" line))
    | Some len when len < 0 || len > max_frame ->
      raise (Framing_error (Printf.sprintf "frame length %d out of bounds" len))
    | Some len -> (
      match really_input_string ic len with
      | exception End_of_file -> raise (Framing_error "EOF inside frame")
      | payload -> (
        (* Consume the trailing newline (EOF right after the payload is
           tolerated: the frame itself is complete). *)
        match input_char ic with
        | '\n' | (exception End_of_file) -> Some payload
        | c ->
          raise
            (Framing_error
               (Printf.sprintf "expected newline after frame, found %C" c)))))
