(* The hot-path flattening differential suite.

   [Memo] and [Plan_gen] were rewritten around interned physical properties
   (dense ids, integer dominance tests), an array-backed kept-plan list and
   incrementally-maintained per-entry bests.  The contract is bit-for-bit
   equivalence: over a seeded 126-query corpus, serial and parallel, the
   flattened pipeline must produce exactly the kept-plan multisets (operator
   trees, orders, partitions, cost/card bits), per-method generated counts
   and final chosen plans of the legacy list-based code — which lives on
   verbatim as [Ref_memo] / [Ref_plan_gen] / [Ref_optimizer]. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

(* ------------------------------------------------------------------ *)
(* Plan fingerprints                                                   *)
(* ------------------------------------------------------------------ *)

(* A plan's full identity: operator tree, per-node physical order and
   partition, and the exact bits of cost and cardinality — any divergence
   anywhere in the tree changes the string. *)
let fp_cols cols =
  String.concat "," (List.map (fun (c : O.Colref.t) -> Printf.sprintf "%d.%s" c.O.Colref.q c.O.Colref.col) cols)

let fp_part = function
  | None -> "-"
  | Some (p : O.Partition_prop.t) ->
    let k = match p.O.Partition_prop.kind with
      | O.Partition_prop.Hash -> "H"
      | O.Partition_prop.Range -> "R"
    in
    k ^ fp_cols p.O.Partition_prop.keys

let rec fp (p : O.Plan.t) =
  let op =
    match p.O.Plan.op with
    | O.Plan.Seq_scan q -> Printf.sprintf "S%d" q
    | O.Plan.Index_scan (q, idx) ->
      Printf.sprintf "I%d:%s" q idx.Qopt_catalog.Index.name
    | O.Plan.Mv_scan name -> "M" ^ name
    | O.Plan.Sort sub -> "T(" ^ fp sub ^ ")"
    | O.Plan.Repartition sub -> "P(" ^ fp sub ^ ")"
    | O.Plan.Join (m, outer, inner, preds) ->
      Printf.sprintf "J%s(%s)(%s)#%d" (O.Join_method.to_string m) (fp outer)
        (fp inner) (List.length preds)
  in
  Printf.sprintf "%s|o:%s|p:%s|c:%Lx|k:%Lx" op (fp_cols p.O.Plan.order)
    (fp_part p.O.Plan.partition)
    (Int64.bits_of_float p.O.Plan.cost)
    (Int64.bits_of_float p.O.Plan.card)

let fp_opt = function None -> "<none>" | Some p -> fp p

(* ------------------------------------------------------------------ *)
(* Whole-MEMO snapshots                                                *)
(* ------------------------------------------------------------------ *)

(* table-set int -> sorted kept-plan fingerprints; comparing these maps
   compares the kept multiset of every entry at once. *)
let snapshot_of iter_entries plans memo =
  let tbl = Hashtbl.create 64 in
  iter_entries
    (fun tables ps ->
      Hashtbl.replace tbl (Bitset.to_int tables)
        (List.sort String.compare (List.map fp ps)))
    memo;
  ignore plans;
  tbl

let new_snapshot memo =
  snapshot_of
    (fun f m -> O.Memo.iter_entries (fun e -> f e.O.Memo.tables (O.Memo.plans e)) m)
    () memo

let ref_snapshot memo =
  snapshot_of
    (fun f m ->
      Ref_memo.iter_entries (fun e -> f e.Ref_memo.tables (Ref_memo.plans e)) m)
    () memo

let check_snapshots q_name a b =
  if Hashtbl.length a <> Hashtbl.length b then
    Alcotest.failf "%s: entry count %d <> %d" q_name (Hashtbl.length a)
      (Hashtbl.length b);
  Hashtbl.iter
    (fun key plans ->
      match Hashtbl.find_opt b key with
      | None -> Alcotest.failf "%s: entry %d missing on reference side" q_name key
      | Some ref_plans ->
        if plans <> ref_plans then
          Alcotest.failf "%s: entry %d kept plans differ:\n  new: %s\n  ref: %s"
            q_name key (String.concat "\n       " plans)
            (String.concat "\n       " ref_plans))
    a

(* ------------------------------------------------------------------ *)
(* New-side per-block driver                                           *)
(* ------------------------------------------------------------------ *)

(* [Optimizer.run_block] replicated so the MEMO stays accessible, with the
   same permissive-retry folding as the reference driver. *)
type new_result = {
  memo : O.Memo.t;
  best : O.Plan.t option;
  joins : int;
  generated : O.Memo.counts;
  scan_plans : int;
  entries : int;
  pruned : int;
}

let new_run_block env knobs block =
  let memo = O.Memo.create block in
  let instr = O.Instrument.create () in
  let gen = O.Plan_gen.create env memo instr in
  O.Enumerator.run ~knobs ~card_of:(O.Plan_gen.card_of gen) memo
    (O.Plan_gen.consumer gen);
  let stats = O.Memo.stats memo in
  let top = O.Memo.find_opt memo (O.Query_block.all_tables block) in
  let best =
    (* [finish] / [topn_adjusted_cost] are the reference module's verbatim
       copies of the production driver: reusing them on both sides makes
       the chosen-plan comparison a pure function of MEMO content. *)
    match top with
    | Some entry ->
      let b = ref None in
      List.iter
        (fun p ->
          let finished = Ref_optimizer.finish env block p in
          let adjusted = Ref_optimizer.topn_adjusted_cost block finished in
          match !b with
          | Some (_, c) when c <= adjusted -> ()
          | Some _ | None -> b := Some (finished, adjusted))
        (O.Memo.plans entry);
      Option.map fst !b
    | None -> None
  in
  ( {
      memo;
      best;
      joins = stats.O.Memo.joins_enumerated;
      generated = stats.O.Memo.generated;
      scan_plans = stats.O.Memo.scan_plans;
      entries = O.Memo.n_entries memo;
      pruned = stats.O.Memo.pruned;
    },
    top <> None )

let new_optimize_block env knobs block =
  let result, reached_top = new_run_block env knobs block in
  if reached_top || O.Query_block.n_quantifiers block <= 1 then result
  else begin
    let retry, _ = new_run_block env (O.Knobs.permissive knobs) block in
    {
      retry with
      joins = result.joins + retry.joins;
      generated = Ref_optimizer.add_counts result.generated retry.generated;
      scan_plans = result.scan_plans + retry.scan_plans;
      entries = result.entries + retry.entries;
      pruned = result.pruned + retry.pruned;
    }
  end

(* ------------------------------------------------------------------ *)
(* The corpus                                                          *)
(* ------------------------------------------------------------------ *)

let pool ~partitioned =
  let schema = W.Warehouse.schema ~partitioned in
  List.concat_map
    (fun (wl : W.Workload.t) -> wl.W.Workload.queries)
    [
      W.Random_gen.generate ~seed:20250807 ~count:60 ~complexity:9 ~schema ();
      W.Random_gen.generate ~seed:1337 ~count:30 ~complexity:6 ~schema ();
      W.Synthetic.linear ~partitioned;
      W.Synthetic.star ~partitioned;
      W.Synthetic.cycle ~partitioned;
    ]

let compare_block env q_name block =
  let n = new_optimize_block env Helpers.stable_knobs block in
  let r = Ref_optimizer.optimize_block env Helpers.stable_knobs block in
  let ck what a b =
    if a <> b then Alcotest.failf "%s: %s new %d <> ref %d" q_name what a b
  in
  ck "joins" n.joins r.Ref_optimizer.joins;
  ck "scan_plans" n.scan_plans r.Ref_optimizer.scan_plans;
  ck "entries" n.entries r.Ref_optimizer.entries;
  ck "pruned" n.pruned r.Ref_optimizer.pruned;
  ck "nljn" n.generated.O.Memo.nljn r.Ref_optimizer.generated.O.Memo.nljn;
  ck "mgjn" n.generated.O.Memo.mgjn r.Ref_optimizer.generated.O.Memo.mgjn;
  ck "hsjn" n.generated.O.Memo.hsjn r.Ref_optimizer.generated.O.Memo.hsjn;
  check_snapshots q_name (new_snapshot n.memo) (ref_snapshot r.Ref_optimizer.memo);
  (* The incremental kept counter must agree with a full MEMO walk. *)
  let walk = ref 0 in
  O.Memo.iter_entries
    (fun e -> walk := !walk + List.length (O.Memo.plans e))
    n.memo;
  ck "kept counter vs walk" (O.Memo.kept_plans n.memo) !walk;
  let nb = fp_opt n.best and rb = fp_opt r.Ref_optimizer.best in
  if nb <> rb then
    Alcotest.failf "%s: chosen plans differ:\n  new: %s\n  ref: %s" q_name nb rb

let corpus_test ~partitioned env env_name =
  t
    (Printf.sprintf
       "flattened MEMO is bit-for-bit the list MEMO (126 queries, %s)" env_name)
    (fun () ->
      let queries = pool ~partitioned in
      Alcotest.(check bool) "pool has > 100 queries" true
        (List.length queries > 100);
      List.iter
        (fun (q : W.Workload.query) ->
          O.Query_block.iter_blocks
            (fun b -> compare_block env q.W.Workload.q_name b)
            q.W.Workload.block)
        queries)

(* ------------------------------------------------------------------ *)
(* Dominance-pruning edge cases                                        *)
(* ------------------------------------------------------------------ *)

let mk_plan ?(order = []) ?partition ~cost tables =
  {
    O.Plan.op = O.Plan.Seq_scan (Bitset.min_elt tables);
    tables;
    order;
    partition;
    card = 100.0;
    cost;
  }

let edge_tests =
  [
    t "equal-cost identical plans: the incumbent wins" (fun () ->
        (* Mutual dominance at equal cost — the arriving twin is pruned, the
           first arrival stays (the [<=] tie-break the array scans must
           reproduce). *)
        let block = Helpers.chain 2 in
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e (mk_plan ~cost:10.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e (mk_plan ~cost:10.0 (Helpers.set [ 0 ]));
        Alcotest.(check int) "one kept" 1 (List.length (O.Memo.plans e));
        Alcotest.(check int) "one pruned" 1 (O.Memo.stats memo).O.Memo.pruned);
    t "equal interesting partition keys collapse" (fun () ->
        (* Both partitions hash on the (interesting) join column: same
           interned key, so the cheaper plan absorbs the costlier. *)
        let block = Helpers.chain 2 in
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        let p = O.Partition_prop.hash [ cr 0 "j1" ] in
        O.Memo.insert_plan memo e
          (mk_plan ~partition:p ~cost:10.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e
          (mk_plan ~partition:p ~cost:20.0 (Helpers.set [ 0 ]));
        Alcotest.(check int) "one kept" 1 (List.length (O.Memo.plans e)));
    t "uninteresting partitions collapse across different keys" (fun () ->
        (* Neither v nor v2 is a join column here: both partitions are
           uninteresting, so key inequality does not protect the costlier
           plan. *)
        let block = Helpers.chain 2 in
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e
          (mk_plan ~partition:(O.Partition_prop.hash [ cr 0 "v" ]) ~cost:10.0
             (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e
          (mk_plan ~partition:(O.Partition_prop.hash [ cr 0 "v2" ]) ~cost:20.0
             (Helpers.set [ 0 ]));
        Alcotest.(check int) "one kept" 1 (List.length (O.Memo.plans e)));
    t "interesting vs uninteresting partition with different keys: both kept"
      (fun () ->
        let block = Helpers.chain 2 in
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e
          (mk_plan ~partition:(O.Partition_prop.hash [ cr 0 "j1" ]) ~cost:10.0
             (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e
          (mk_plan ~partition:(O.Partition_prop.hash [ cr 0 "v" ]) ~cost:5.0
             (Helpers.set [ 0 ]));
        Alcotest.(check int) "both kept" 2 (List.length (O.Memo.plans e)));
    t "pipelinable plan survives a cheaper blocking plan only under LIMIT"
      (fun () ->
        let base = Helpers.chain 1 in
        let pipe = mk_plan ~cost:50.0 (Helpers.set [ 0 ]) in
        let blocking =
          { (mk_plan ~cost:10.0 (Helpers.set [ 0 ])) with
            O.Plan.op = O.Plan.Sort (mk_plan ~cost:10.0 (Helpers.set [ 0 ]));
          }
        in
        (* Top-N block: pipelinability is a protected property. *)
        let topn = { base with O.Query_block.first_n = Some 5 } in
        let memo = O.Memo.create topn in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e pipe;
        O.Memo.insert_plan memo e blocking;
        Alcotest.(check int) "both kept under LIMIT" 2
          (List.length (O.Memo.plans e));
        Alcotest.(check bool) "best_pipelinable finds the survivor" true
          (O.Memo.best_pipelinable_plan memo e = Some pipe);
        (* Same two plans without LIMIT: pipelinability is not a property,
           the cheap blocking plan absorbs the pipelinable one. *)
        let memo = O.Memo.create base in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e pipe;
        O.Memo.insert_plan memo e blocking;
        Alcotest.(check int) "one kept without LIMIT" 1
          (List.length (O.Memo.plans e)));
  ]

let suite =
  edge_tests
  @ [
      corpus_test ~partitioned:false O.Env.serial "serial";
      corpus_test ~partitioned:true (O.Env.parallel ~nodes:4) "parallel x4";
    ]
