type mode =
  | Serial
  | Parallel of int

type t = { mode : mode }

let serial = { mode = Serial }

let parallel ~nodes =
  if nodes < 2 then invalid_arg "Env.parallel: need at least 2 nodes";
  { mode = Parallel nodes }

let is_parallel t = match t.mode with Serial -> false | Parallel _ -> true

let nodes t = match t.mode with Serial -> 1 | Parallel n -> n

let suffix t = match t.mode with Serial -> "_s" | Parallel _ -> "_p"

let pp ppf t =
  match t.mode with
  | Serial -> Format.pp_print_string ppf "serial"
  | Parallel n -> Format.fprintf ppf "parallel(%d)" n
