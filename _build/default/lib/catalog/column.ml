type t = {
  name : string;
  ctype : Col_type.t;
  distinct : float;
  null_frac : float;
  histogram : Histogram.t;
}

let make ?(ctype = Col_type.Int) ?distinct ?(null_frac = 0.0) ?lo ?hi
    ?(skewed = false) ~rows name =
  let distinct = match distinct with Some d -> d | None -> rows in
  let distinct = Float.max 1.0 (Float.min distinct rows) in
  let lo = match lo with Some v -> v | None -> 0.0 in
  let hi = match hi with Some v -> v | None -> lo +. Float.max 1.0 distinct in
  let histogram =
    if skewed then Histogram.zipfian ~lo ~hi ~rows ~distinct ()
    else Histogram.uniform ~lo ~hi ~rows ~distinct ()
  in
  { name; ctype; distinct; null_frac; histogram }

let byte_width t = Col_type.byte_width t.ctype

let pp ppf t =
  Format.fprintf ppf "%s %a (d=%.0f)" t.name Col_type.pp t.ctype t.distinct
