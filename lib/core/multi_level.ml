module O = Qopt_optimizer
module Timer = Qopt_util.Timer
module Bitset = Qopt_util.Bitset
module Obs = Qopt_obs

(* Multi-level piggyback metrics (no-ops unless Qopt_obs is enabled). *)
let m_runs = Obs.Registry.counter Obs.Registry.default "multilevel.piggyback_runs"

let m_levels = Obs.Registry.histogram Obs.Registry.default "multilevel.levels_per_run"

type level = {
  level_name : string;
  level_knobs : O.Knobs.t;
}

type level_counts = {
  lc_name : string;
  lc_joins : int;
  lc_nljn : int;
  lc_mgjn : int;
  lc_hsjn : int;
}

let lc_total lc = lc.lc_nljn + lc.lc_mgjn + lc.lc_hsjn

type slot = {
  s_level : level;
  s_counts : O.Memo.counts;
  mutable s_joins : int;
}

let event_feasibility ~knobs ~block ~card_of (event : O.Enumerator.join_event) =
  let s = event.O.Enumerator.left and l = event.O.Enumerator.right in
  let cartesian_ok =
    (not event.O.Enumerator.cartesian)
    || knobs.O.Knobs.allow_cartesian
    || (knobs.O.Knobs.card1_cartesian
       && ((Bitset.cardinal s.O.Memo.tables <= knobs.O.Knobs.card1_max_size
           && card_of s <= knobs.O.Knobs.card1_threshold)
          || (Bitset.cardinal l.O.Memo.tables <= knobs.O.Knobs.card1_max_size
             && card_of l <= knobs.O.Knobs.card1_threshold)))
  in
  if not cartesian_ok then (false, false)
  else
    ( O.Enumerator.direction_feasible ~knobs ~block ~outer:s.O.Memo.tables
        ~inner:l.O.Memo.tables,
      O.Enumerator.direction_feasible ~knobs ~block ~outer:l.O.Memo.tables
        ~inner:s.O.Memo.tables )

let run_block ?options ~base ~slots env block =
  let memo = O.Memo.create block in
  let acc = Accumulate.create ?options env memo in
  let base_consumer = Accumulate.consumer acc in
  let card_of = Accumulate.card_of acc in
  let on_join event =
    (* Lower levels first: their counts must use the input lists *before*
       this join pollutes the result entry, and the lists of inputs are
       unaffected by counting. *)
    List.iter
      (fun slot ->
        let left_ok, right_ok =
          event_feasibility ~knobs:slot.s_level.level_knobs ~block ~card_of event
        in
        if left_ok || right_ok then begin
          slot.s_joins <- slot.s_joins + 1;
          Accumulate.count_into acc event ~left_ok ~right_ok slot.s_counts
        end)
      slots;
    base_consumer.O.Enumerator.on_join event
  in
  O.Enumerator.run ~knobs:base ~card_of memo
    { base_consumer with O.Enumerator.on_join };
  ( Accumulate.counts acc,
    (O.Memo.stats memo).O.Memo.joins_enumerated )

let piggyback ?options ~base ~levels env block =
  Obs.Counter.incr m_runs;
  Obs.Histo.observe m_levels (float_of_int (List.length levels));
  let slots =
    List.map
      (fun level -> { s_level = level; s_counts = O.Memo.counts_zero (); s_joins = 0 })
      levels
  in
  let base_counts = O.Memo.counts_zero () in
  let base_joins = ref 0 in
  let (), elapsed =
    Timer.time (fun () ->
        O.Query_block.iter_blocks
          (fun b ->
            let counts, joins = run_block ?options ~base ~slots env b in
            base_joins := !base_joins + joins;
            List.iter
              (fun m ->
                O.Memo.counts_add base_counts m (O.Memo.counts_get counts m))
              O.Join_method.all)
          block)
  in
  let results =
    {
      lc_name = "base";
      lc_joins = !base_joins;
      lc_nljn = base_counts.O.Memo.nljn;
      lc_mgjn = base_counts.O.Memo.mgjn;
      lc_hsjn = base_counts.O.Memo.hsjn;
    }
    :: List.map
         (fun slot ->
           {
             lc_name = slot.s_level.level_name;
             lc_joins = slot.s_joins;
             lc_nljn = slot.s_counts.O.Memo.nljn;
             lc_mgjn = slot.s_counts.O.Memo.mgjn;
             lc_hsjn = slot.s_counts.O.Memo.hsjn;
           })
         slots
  in
  (results, elapsed)
