lib/experiments/common.ml: Cote Hashtbl List Printf Qopt_optimizer Qopt_util Qopt_workloads
