(** Rendezvous (highest-random-weight) hashing for template affinity.

    Each (key, node) pair is scored with a deterministic 64-bit hash
    (FNV-1a over the key, splitmix64-mixed with the node index); a key
    belongs to the highest-scoring node.  Unlike modulo placement,
    removing a node remaps only that node's keys — the stability the
    fleet router relies on to keep a statement template's compiled state
    (statement cache, plan cache) concentrated on one backend across
    membership changes. *)

val score : string -> int -> int64
(** Deterministic score of [key] on node [node]. *)

val ranked : nodes:int -> string -> int list
(** All node indices [0 .. nodes-1] by descending score: the head is the
    key's owner, the tail is the failover order.  Empty iff [nodes <= 0]. *)

val choose : nodes:int -> string -> int
(** Head of {!ranked}.  Raises [Invalid_argument] when [nodes <= 0]. *)
