lib/experiments/coeffs.ml: Common Cote Format List Printf Qopt_optimizer Qopt_util
