lib/optimizer/cost_model.ml: Colref Env Float List Plan Pred Qopt_catalog Qopt_util Quantifier Query_block
