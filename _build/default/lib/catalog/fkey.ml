type t = {
  from_table : string;
  from_cols : string list;
  to_table : string;
  to_cols : string list;
}

let make ~from_table ~from_cols ~to_table ~to_cols =
  if from_cols = [] || List.length from_cols <> List.length to_cols then
    invalid_arg "Fkey.make: mismatched column lists";
  { from_table; from_cols; to_table; to_cols }

let pp ppf t =
  Format.fprintf ppf "%s(%s) -> %s(%s)" t.from_table
    (String.concat "," t.from_cols)
    t.to_table
    (String.concat "," t.to_cols)
