lib/optimizer/enumerator.mli: Knobs Memo Pred Qopt_util Query_block
