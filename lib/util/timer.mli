(** Timing helpers.

    All figures in the paper compare wall-clock compilation time against
    wall-clock estimation time; the harness measures every interval with
    the monotonic clock so an NTP step can never corrupt a span, fire a
    server deadline early, or produce a negative elapsed time.  [now]
    remains the wall clock for timestamps that must relate to calendar
    time. *)

val monotonic_now : unit -> float
(** Seconds on the monotonic clock ([clock_gettime(CLOCK_MONOTONIC)]),
    from an arbitrary epoch: only differences are meaningful.  Never
    decreases, immune to wall-clock steps. *)

val now : unit -> float
(** Wall-clock seconds since the epoch, sub-microsecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] once and returns its result with elapsed seconds,
    measured on the monotonic clock. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] [repeats] times (default 3) and returns
    the last result together with the median elapsed time, damping scheduler
    noise in the experiment harness. *)

type bucket
(** A mutable accumulator of elapsed seconds. *)

val bucket : unit -> bucket

val add_to : bucket -> (unit -> 'a) -> 'a
(** Runs the thunk, adding its elapsed time to the bucket. *)

val elapsed : bucket -> float

val reset : bucket -> unit
