examples/workload_advisor.mli:
