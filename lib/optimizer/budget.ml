type t = {
  max_memo_entries : int option;
  max_kept_plans : int option;
  max_predicted_s : float option;
}

type blown = {
  b_what : string;
  b_limit : int;
  b_reached : int;
}

exception Exceeded of blown

let unlimited =
  { max_memo_entries = None; max_kept_plans = None; max_predicted_s = None }

let make ?max_memo_entries ?max_kept_plans ?max_predicted_s () =
  { max_memo_entries; max_kept_plans; max_predicted_s }

let is_unlimited b = b.max_memo_entries = None && b.max_kept_plans = None

let check b ~entries ~kept =
  (match b.max_memo_entries with
  | Some limit when entries > limit ->
    raise (Exceeded { b_what = "memo_entries"; b_limit = limit; b_reached = entries })
  | Some _ | None -> ());
  match b.max_kept_plans with
  | Some limit when kept > limit ->
    raise (Exceeded { b_what = "kept_plans"; b_limit = limit; b_reached = kept })
  | Some _ | None -> ()

let pp_blown ppf b =
  Format.fprintf ppf "budget exceeded: %s %d > %d" b.b_what b.b_reached b.b_limit
