(* The DP join enumerator: closed formulas, an independent brute-force
   oracle, dedup, knobs, outer-eligibility and dependency handling. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

(* Run the enumerator with a counting consumer; cardinalities come from the
   full model. *)
let run_enum ?(knobs = Helpers.stable_knobs) block =
  let memo = O.Memo.create block in
  let joins = ref 0 in
  let events = ref [] in
  let consumer =
    {
      O.Enumerator.on_entry = (fun _ -> ());
      O.Enumerator.on_join =
        (fun ev ->
          incr joins;
          events := ev :: !events);
    }
  in
  O.Enumerator.run ~knobs ~card_of:(O.Memo.card_of memo O.Cardinality.Full) memo consumer;
  (!joins, List.rev !events, memo)

(* Independent oracle: constructibility of every subset is computed by naive
   recursion over all splits, then feasible (S, T\S) pairs are counted. *)
let oracle ?(knobs = Helpers.stable_knobs) block =
  let n = O.Query_block.n_quantifiers block in
  let card tbl = O.Cardinality.of_set O.Cardinality.Full block tbl in
  let union_valid u =
    Bitset.for_all
      (fun q -> Bitset.subset (O.Query_block.quantifier block q).O.Quantifier.deps u)
      u
  in
  let feasible_join s l =
    Bitset.disjoint s l
    && union_valid (Bitset.union s l)
    &&
    let preds = List.filter (fun p -> O.Pred.crosses p s l) block.O.Query_block.preds in
    let cartesian_ok =
      preds <> []
      || knobs.O.Knobs.allow_cartesian
      || (knobs.O.Knobs.card1_cartesian
         && ((Bitset.cardinal s <= knobs.O.Knobs.card1_max_size
             && card s <= knobs.O.Knobs.card1_threshold)
            || (Bitset.cardinal l <= knobs.O.Knobs.card1_max_size
               && card l <= knobs.O.Knobs.card1_threshold)))
    in
    cartesian_ok
    && (O.Enumerator.direction_feasible ~knobs ~block ~outer:s ~inner:l
       || O.Enumerator.direction_feasible ~knobs ~block ~outer:l ~inner:s)
  in
  let constructible = Hashtbl.create 64 in
  let rec is_constructible tbl =
    if Bitset.cardinal tbl <= 1 then true
    else
      match Hashtbl.find_opt constructible (Bitset.to_int tbl) with
      | Some b -> b
      | None ->
        Hashtbl.add constructible (Bitset.to_int tbl) false (* cycle guard *);
        let found = ref false in
        Bitset.iter_subsets tbl (fun s ->
            if not !found then begin
              let l = Bitset.diff tbl s in
              if
                Bitset.compare s l < 0 && is_constructible s && is_constructible l
                && feasible_join s l
              then found := true
            end);
        Hashtbl.replace constructible (Bitset.to_int tbl) !found;
        !found
  in
  let joins = ref 0 in
  for mask = 1 to (1 lsl n) - 1 do
    let tbl = Bitset.of_int mask in
    if Bitset.cardinal tbl >= 2 && is_constructible tbl then
      Bitset.iter_subsets tbl (fun s ->
          let l = Bitset.diff tbl s in
          if
            Bitset.compare s l < 0 && is_constructible s && is_constructible l
            && feasible_join s l
          then incr joins)
  done;
  !joins

let formula_tests =
  [
    t "linear bushy joins = (n^3 - n)/6 (Ono-Lohman)" (fun () ->
        List.iter
          (fun n ->
            let joins, _, _ = run_enum ~knobs:Helpers.full_bushy_stable (Helpers.chain n) in
            Alcotest.(check int)
              (Printf.sprintf "n=%d" n)
              (((n * n * n) - n) / 6)
              joins)
          [ 2; 3; 4; 5; 6; 7; 8 ]);
    t "star joins = (n-1) * 2^(n-2)" (fun () ->
        List.iter
          (fun n ->
            let joins, _, _ = run_enum ~knobs:Helpers.full_bushy_stable (Helpers.star_block n) in
            Alcotest.(check int)
              (Printf.sprintf "n=%d" n)
              ((n - 1) * (1 lsl (n - 2)))
              joins)
          [ 3; 4; 5; 6; 7; 8 ]);
    t "left-deep linear joins = n(n-1)/2" (fun () ->
        (* Chains: left-deep joins are (contiguous segment, adjacent single).
           Segments [i..j] joined with i-1 or j+1: count = 2*(n-1) + ... each
           join is (segment, single) with the single adjacent; per segment of
           length l >= 1 there are its adjacent extensions; total = number of
           (segment, extension) pairs = n(n-1)/2 + extra?  Verified against
           the oracle instead of a closed form. *)
        List.iter
          (fun n ->
            let block = Helpers.chain n in
            let joins, _, _ = run_enum ~knobs:O.Knobs.left_deep block in
            Alcotest.(check int) (Printf.sprintf "n=%d oracle" n)
              (oracle ~knobs:O.Knobs.left_deep block)
              joins)
          [ 2; 3; 4; 5; 6 ]);
    t "composite-inner limit prunes bushy joins" (fun () ->
        let block = Helpers.chain 6 in
        let unrestricted, _, _ = run_enum ~knobs:Helpers.full_bushy_stable block in
        let limited, _, _ =
          run_enum ~knobs:{ Helpers.stable_knobs with O.Knobs.max_inner = Some 2 } block
        in
        Alcotest.(check bool) "fewer joins" true (limited < unrestricted);
        Alcotest.(check int) "limited matches oracle"
          (oracle ~knobs:{ Helpers.stable_knobs with O.Knobs.max_inner = Some 2 } block)
          limited);
  ]

let behaviour_tests =
  [
    t "each unordered pair enumerated once" (fun () ->
        let _, events, _ = run_enum (Helpers.chain 5) in
        let keys =
          List.map
            (fun (ev : O.Enumerator.join_event) ->
              ( Bitset.to_int ev.O.Enumerator.left.O.Memo.tables,
                Bitset.to_int ev.O.Enumerator.right.O.Memo.tables ))
            events
        in
        Alcotest.(check int) "no duplicates" (List.length keys)
          (List.length (List.sort_uniq compare keys)));
    t "events carry crossing predicates" (fun () ->
        let _, events, _ = run_enum (Helpers.chain 3) in
        List.iter
          (fun (ev : O.Enumerator.join_event) ->
            Alcotest.(check bool) "connected events have preds" true
              (ev.O.Enumerator.cartesian = (ev.O.Enumerator.preds = [])))
          events);
    t "result entry is the union" (fun () ->
        let _, events, _ = run_enum (Helpers.chain 4) in
        List.iter
          (fun (ev : O.Enumerator.join_event) ->
            Alcotest.(check bool) "union" true
              (Bitset.equal ev.O.Enumerator.result.O.Memo.tables
                 (Bitset.union ev.O.Enumerator.left.O.Memo.tables
                    ev.O.Enumerator.right.O.Memo.tables)))
          events);
    t "no cartesian events without the heuristic" (fun () ->
        let _, events, _ = run_enum (Helpers.chain 5) in
        Alcotest.(check bool) "none" true
          (List.for_all (fun ev -> not ev.O.Enumerator.cartesian) events));
    t "outer join blocks null side as outer" (fun () ->
        let quantifiers =
          [
            O.Quantifier.make 0 (Helpers.table ~rows:100.0 "a");
            O.Quantifier.make 1 (Helpers.table ~rows:100.0 "b");
          ]
        in
        let block =
          O.Query_block.make ~name:"oj" ~quantifiers
            ~preds:[ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ]
            ~outer_joins:
              [ { O.Query_block.oj_preserved = Helpers.set [ 0 ]; oj_null = Helpers.set [ 1 ] } ]
            ()
        in
        let _, events, _ = run_enum block in
        match events with
        | [ ev ] ->
          (* Left = {0} (preserved) may be outer; right = {1} (null side)
             may not. *)
          Alcotest.(check bool) "preserved outer ok" true ev.O.Enumerator.left_outer_ok;
          Alcotest.(check bool) "null side blocked" false ev.O.Enumerator.right_outer_ok
        | _ -> Alcotest.fail "expected exactly one join");
    t "correlation dependency gates composites" (fun () ->
        (* c depends on a: {b,c} is never built; c joins only once a is
           present. *)
        let quantifiers =
          [
            O.Quantifier.make 0 (Helpers.table ~rows:100.0 "a");
            O.Quantifier.make 1 (Helpers.table ~rows:100.0 "b");
            O.Quantifier.make ~deps:(Helpers.set [ 0 ]) 2 (Helpers.table ~rows:100.0 "c");
          ]
        in
        let block =
          O.Query_block.make ~name:"dep" ~quantifiers
            ~preds:
              [
                O.Pred.Eq_join (cr 0 "j1", cr 1 "j1");
                O.Pred.Eq_join (cr 1 "j2", cr 2 "j2");
              ]
            ()
        in
        let _, events, memo = run_enum block in
        Alcotest.(check bool) "{1,2} never built" true
          (O.Memo.find_opt memo (Helpers.set [ 1; 2 ]) = None);
        Alcotest.(check bool) "some join involves c" true
          (List.exists
             (fun (ev : O.Enumerator.join_event) ->
               Bitset.mem 2 ev.O.Enumerator.result.O.Memo.tables)
             events));
    t "outer_allowed=false quantifier never on the outer side" (fun () ->
        let quantifiers =
          [
            O.Quantifier.make 0 (Helpers.table ~rows:100.0 "a");
            O.Quantifier.make ~outer_allowed:false 1 (Helpers.table ~rows:100.0 "b");
          ]
        in
        let block =
          O.Query_block.make ~name:"na" ~quantifiers
            ~preds:[ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ]
            ()
        in
        let _, events, _ = run_enum block in
        match events with
        | [ ev ] ->
          Alcotest.(check bool) "left ok" true ev.O.Enumerator.left_outer_ok;
          Alcotest.(check bool) "blocked right" false ev.O.Enumerator.right_outer_ok
        | _ -> Alcotest.fail "expected one join");
    t "card-1 heuristic admits singleton cartesians only" (fun () ->
        (* One-row table t0 with no predicate to t2. *)
        let one_row =
          Qopt_catalog.Table.make ~rows:1.0 ~name:"one"
            [ Qopt_catalog.Column.make ~rows:1.0 "j1" ]
        in
        let quantifiers =
          [
            O.Quantifier.make 0 one_row;
            O.Quantifier.make 1 (Helpers.table ~rows:100.0 "b");
          ]
        in
        let block = O.Query_block.make ~name:"c1" ~quantifiers ~preds:[] () in
        let without, _, _ = run_enum ~knobs:Helpers.stable_knobs block in
        let with_h, events, _ = run_enum ~knobs:O.Knobs.default block in
        Alcotest.(check int) "no joins without heuristic" 0 without;
        Alcotest.(check int) "cartesian admitted" 1 with_h;
        Alcotest.(check bool) "flagged cartesian" true
          (List.for_all (fun ev -> ev.O.Enumerator.cartesian) events));
  ]

(* Random join graphs checked against the oracle. *)
let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* extra_edges = small_list (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    let* max_inner = int_range 1 3 in
    let* left_deep = bool in
    return (n, extra_edges, max_inner, left_deep))

let block_of_graph (n, extra_edges, _, _) =
  let quantifiers =
    List.init n (fun i -> O.Quantifier.make i (Helpers.table ~rows:(100.0 *. float_of_int (i + 1)) (Printf.sprintf "g%d" i)))
  in
  (* A spanning chain keeps the graph connected; extra edges add cycles. *)
  let chain_preds =
    List.init (n - 1) (fun i -> O.Pred.Eq_join (cr i "j1", cr (i + 1) "j1"))
  in
  let extra_preds =
    List.filter_map
      (fun (a, b) ->
        if a <> b then Some (O.Pred.Eq_join (cr (min a b) "j2", cr (max a b) "j2"))
        else None)
      extra_edges
  in
  O.Query_block.make ~name:"rand" ~quantifiers ~preds:(chain_preds @ extra_preds) ()

let oracle_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"enumerator matches brute-force oracle" ~count:60 gen_graph
       (fun ((_, _, max_inner, left_deep) as g) ->
         let block = block_of_graph g in
         let knobs =
           {
             Helpers.stable_knobs with
             O.Knobs.max_inner = Some max_inner;
             left_deep_only = left_deep;
           }
         in
         let joins, _, _ = run_enum ~knobs block in
         joins = oracle ~knobs block))

(* ------------------------------------------------------------------ *)
(* Differential suite: the adjacency-indexed enumerator vs the naive    *)
(* reference loop (test/ref_enumerator.ml).  COTE correctness depends   *)
(* on the enumerator producing exactly the optimizer's joins, so the    *)
(* index must be behaviour-preserving join-for-join.                    *)
(* ------------------------------------------------------------------ *)

module W = Qopt_workloads

(* A join event reduced to comparable data: table sets, the crossing
   predicates (rendered, order-sensitive — merge-order derivation reads
   them in list order), and the feasibility flags. *)
let event_key (ev : O.Enumerator.join_event) =
  ( Bitset.to_int ev.O.Enumerator.left.O.Memo.tables,
    Bitset.to_int ev.O.Enumerator.right.O.Memo.tables,
    List.map (Format.asprintf "%a" O.Pred.pp) ev.O.Enumerator.preds,
    ev.O.Enumerator.cartesian,
    ev.O.Enumerator.left_outer_ok,
    ev.O.Enumerator.right_outer_ok )

(* Run one enumerator over a fresh MEMO with a recording consumer. *)
let trace run_fn ~knobs block =
  let memo = O.Memo.create block in
  let events = ref [] in
  let entries_seen = ref [] in
  let consumer =
    {
      O.Enumerator.on_entry =
        (fun e -> entries_seen := Bitset.to_int e.O.Memo.tables :: !entries_seen);
      O.Enumerator.on_join = (fun ev -> events := event_key ev :: !events);
    }
  in
  run_fn ~knobs ~card_of:(O.Memo.card_of memo O.Cardinality.Full) memo consumer;
  ( List.rev !events,
    List.rev !entries_seen,
    (O.Memo.stats memo).O.Memo.joins_enumerated,
    O.Memo.n_entries memo )

let new_run ~knobs ~card_of memo consumer =
  O.Enumerator.run ~knobs ~card_of memo consumer

let ref_run ~knobs ~card_of memo consumer =
  Ref_enumerator.run ~knobs ~card_of memo consumer

(* Every block of every query in the seeded workloads (children included —
   subquery blocks are enumerated separately). *)
let workload_blocks =
  lazy
    (let schema = W.Warehouse.schema ~partitioned:false in
     let workloads =
       [
         W.Synthetic.linear ~partitioned:false;
         W.Synthetic.star ~partitioned:false;
         W.Random_gen.generate ~seed:42 ~count:20 ~complexity:8 ~schema ();
         W.Tpch.all ~partitioned:false;
       ]
     in
     List.concat_map
       (fun (wl : W.Workload.t) ->
         List.concat_map
           (fun (q : W.Workload.query) ->
             let blocks = ref [] in
             O.Query_block.iter_blocks
               (fun b ->
                 blocks := (wl.W.Workload.w_name ^ "/" ^ q.W.Workload.q_name, b) :: !blocks)
               q.W.Workload.block;
             List.rev !blocks)
           wl.W.Workload.queries)
       workloads)

let knob_sets =
  [
    ("default", O.Knobs.default);
    ("stable", Helpers.stable_knobs);
    ("full-bushy-stable", Helpers.full_bushy_stable);
    ("left-deep", O.Knobs.left_deep);
    ("permissive", O.Knobs.permissive O.Knobs.default);
  ]

(* Reference COTE estimate: Estimator.estimate re-implemented on top of the
   naive reference loop, including the permissive fallback and both-passes
   accounting. *)
let ref_estimate ~knobs env block =
  let est_block b =
    let run_pass knobs =
      let memo = O.Memo.create b in
      let acc = Cote.Accumulate.create env memo in
      Ref_enumerator.run ~knobs ~card_of:(Cote.Accumulate.card_of acc) memo
        (Cote.Accumulate.consumer acc);
      (memo, acc)
    in
    let first = run_pass knobs in
    let passes =
      let memo, _ = first in
      if
        O.Memo.find_opt memo (O.Query_block.all_tables b) = None
        && O.Query_block.n_quantifiers b > 1
      then [ first; run_pass (O.Knobs.permissive knobs) ]
      else [ first ]
    in
    let joins, nljn, mgjn, hsjn, scans, entries =
      List.fold_left
        (fun (j, n, m, h, s, e) (memo, acc) ->
          let counts = Cote.Accumulate.counts acc in
          ( j + (O.Memo.stats memo).O.Memo.joins_enumerated,
            n + counts.O.Memo.nljn,
            m + counts.O.Memo.mgjn,
            h + counts.O.Memo.hsjn,
            s + Cote.Accumulate.scan_plans acc,
            e + O.Memo.n_entries memo ))
        (0, 0, 0, 0, 0, 0) passes
    in
    (joins, nljn, mgjn, hsjn, scans, entries)
  in
  let total = ref (0, 0, 0, 0, 0, 0) in
  O.Query_block.iter_blocks
    (fun b ->
      let j, n, m, h, s, e = est_block b in
      let j0, n0, m0, h0, s0, e0 = !total in
      total := (j0 + j, n0 + n, m0 + m, h0 + h, s0 + s, e0 + e))
    block;
  !total

let differential_tests =
  [
    t "indexed enumerator = naive loop: identical event streams (all workloads)"
      (fun () ->
        let checked = ref 0 in
        List.iter
          (fun (name, block) ->
            List.iter
              (fun (kname, knobs) ->
                let ev_new, en_new, j_new, m_new = trace new_run ~knobs block in
                let ev_ref, en_ref, j_ref, m_ref = trace ref_run ~knobs block in
                incr checked;
                if j_new <> j_ref then
                  Alcotest.failf "%s [%s]: joins_enumerated %d <> %d" name
                    kname j_new j_ref;
                if m_new <> m_ref then
                  Alcotest.failf "%s [%s]: entries %d <> %d" name kname m_new
                    m_ref;
                if en_new <> en_ref then
                  Alcotest.failf "%s [%s]: entry creation sequences differ"
                    name kname;
                if ev_new <> ev_ref then
                  Alcotest.failf "%s [%s]: join event streams differ" name
                    kname)
              knob_sets)
          (Lazy.force workload_blocks);
        Alcotest.(check bool) "covered a real corpus" true (!checked > 300));
    t "COTE estimates unchanged by the adjacency index (all workloads)"
      (fun () ->
        List.iter
          (fun (env_name, env) ->
            List.iter
              (fun (name, block) ->
                List.iter
                  (fun (kname, knobs) ->
                    let e = Cote.Estimator.estimate ~knobs env block in
                    let j, n, m, h, s, en = ref_estimate ~knobs env block in
                    let ck what a b =
                      if a <> b then
                        Alcotest.failf "%s [%s/%s]: %s %d <> reference %d" name
                          env_name kname what a b
                    in
                    ck "joins" e.Cote.Estimator.joins j;
                    ck "nljn" e.Cote.Estimator.nljn n;
                    ck "mgjn" e.Cote.Estimator.mgjn m;
                    ck "hsjn" e.Cote.Estimator.hsjn h;
                    ck "scan_plans" e.Cote.Estimator.scan_plans s;
                    ck "entries" e.Cote.Estimator.entries en)
                  [ ("default", O.Knobs.default); ("stable", Helpers.stable_knobs) ])
              (* Top-level queries only: estimate recurses into children
                 itself. *)
              (List.concat_map
                 (fun (wl : W.Workload.t) ->
                   List.map
                     (fun (q : W.Workload.query) ->
                       ( wl.W.Workload.w_name ^ "/" ^ q.W.Workload.q_name,
                         q.W.Workload.block ))
                     wl.W.Workload.queries)
                 [
                   W.Synthetic.star ~partitioned:false;
                   W.Tpch.all ~partitioned:false;
                 ]))
          [ ("serial", O.Env.serial); ("parallel", O.Env.parallel ~nodes:4) ]);
    t "adjacency gate skips pairs corpus-wide (pairs_considered drops)"
      (fun () ->
        let consumer =
          { O.Enumerator.on_entry = (fun _ -> ()); on_join = (fun _ -> ()) }
        in
        let naive_pairs knobs block =
          let pairs = ref 0 in
          let memo = O.Memo.create block in
          Ref_enumerator.run
            ~on_pair:(fun () -> incr pairs)
            ~knobs
            ~card_of:(O.Memo.card_of memo O.Cardinality.Full)
            memo consumer;
          !pairs
        in
        let indexed_pairs knobs block =
          (* Via the metrics layer: the gate must fire before the counter. *)
          let reg = Qopt_obs.Registry.default in
          let snap () =
            Qopt_obs.Registry.counter_value reg "enumerator.pairs_considered"
          in
          let before = snap () in
          Qopt_obs.Control.with_enabled true (fun () ->
              let memo = O.Memo.create block in
              O.Enumerator.run ~knobs
                ~card_of:(O.Memo.card_of memo O.Cardinality.Full)
                memo consumer);
          snap () - before
        in
        List.iter
          (fun (kname, knobs) ->
            let naive, indexed =
              List.fold_left
                (fun (a, b) (_, block) ->
                  (a + naive_pairs knobs block, b + indexed_pairs knobs block))
                (0, 0)
                (Lazy.force workload_blocks)
            in
            let ratio = float_of_int indexed /. float_of_int naive in
            Format.printf
              "pairs_considered [%s]: naive %d -> indexed %d (%.1f%%)@." kname
              naive indexed (100.0 *. ratio);
            Alcotest.(check bool)
              (Printf.sprintf "[%s] %d -> %d" kname naive indexed)
              true
              (indexed < naive && ratio <= 0.9))
          [ ("default", O.Knobs.default); ("stable", Helpers.stable_knobs) ])
  ]

(* Plan_gen.partition_groups was rewritten from a quadratic nested recursion
   to an accumulator pass; the reference below is the old implementation
   verbatim.  Both must group identically — same group order, same winner
   per group, same strict-< tie behaviour. *)
let reference_partition_groups equiv plans =
  List.fold_left
    (fun groups (p : O.Plan.t) ->
      let rec place = function
        | [] -> [ (p.O.Plan.partition, p) ]
        | ((part, best) as g) :: rest ->
          let same =
            match (part, p.O.Plan.partition) with
            | None, None -> true
            | Some a, Some b -> O.Partition_prop.equal_under equiv a b
            | None, Some _ | Some _, None -> false
          in
          if same then
            if p.O.Plan.cost < best.O.Plan.cost then (part, p) :: rest
            else g :: rest
          else g :: place rest
      in
      place groups)
    [] plans

let partition_groups_diff =
  t "partition_groups matches the quadratic reference on random plan lists"
    (fun () ->
      let rng = Qopt_util.Rng.create 20260807 in
      let partitions =
        [|
          None;
          Some (O.Partition_prop.hash [ cr 0 "j1" ]);
          Some (O.Partition_prop.hash [ cr 1 "j1" ]);
          Some (O.Partition_prop.hash [ cr 0 "j2" ]);
          Some (O.Partition_prop.range [ cr 0 "j1" ]);
          Some (O.Partition_prop.hash [ cr 0 "j1"; cr 0 "j2" ]);
        |]
      in
      (* One equivalence so distinct colrefs can still collide as keys. *)
      let equiv = O.Equiv.add_eq O.Equiv.empty (cr 0 "j1") (cr 1 "j1") in
      let plan partition cost =
        {
          O.Plan.op = O.Plan.Seq_scan 0;
          tables = Bitset.of_list [ 0 ];
          order = [];
          partition;
          card = 10.0;
          cost;
        }
      in
      for _trial = 1 to 200 do
        let n = Qopt_util.Rng.int rng 24 in
        let plans =
          List.init n (fun _ ->
              plan
                (Qopt_util.Rng.pick rng partitions)
                (* Few distinct costs, so cost ties actually occur. *)
                (float_of_int (Qopt_util.Rng.int rng 5)))
        in
        List.iter
          (fun eq ->
            let expected = reference_partition_groups eq plans in
            let actual = O.Plan_gen.partition_groups eq plans in
            if expected <> actual then
              Alcotest.failf "groups diverge on a %d-plan list" n)
          [ O.Equiv.empty; equiv ]
      done)

let suite =
  formula_tests @ behaviour_tests @ [ oracle_prop ] @ differential_tests
  @ [ partition_groups_diff ]
