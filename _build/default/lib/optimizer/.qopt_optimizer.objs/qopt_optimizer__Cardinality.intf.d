lib/optimizer/cardinality.mli: Pred Qopt_util Query_block
