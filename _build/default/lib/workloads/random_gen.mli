(** The random workload (Section 5).

    Reproduces DB2's random query generator as the paper describes it: "The
    tool creates increasingly complex queries by merging simpler queries
    defined on a given database schema, using either subqueries or joins,
    until a specified complexity level is reached.  One important feature of
    the generator is that it tries to join two tables with a foreign-key to
    primary-key relationship or having columns with the same name."

    Seed queries pick a table and attach neighbours along foreign keys;
    merging either splices two queries into one block joined through a
    foreign key (or a shared column name) or nests one query as a subquery
    of the other.  Generation is deterministic in the seed. *)

val generate :
  ?seed:int ->
  ?count:int ->
  ?complexity:int ->
  schema:Qopt_catalog.Schema.t ->
  unit ->
  Workload.t
(** [generate ~schema ()] builds [count] (default 12) queries of increasing
    complexity (up to ~[complexity] tables per query, default 12) over the
    schema — the paper uses the real1 schema. *)
