lib/optimizer/enumerator.ml: Knobs List Memo Pred Qopt_util Quantifier Query_block
