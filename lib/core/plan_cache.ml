module O = Qopt_optimizer
module Obs = Qopt_obs

(* Process-wide metrics shared by every cache instance, like Stmt_cache's
   (no-ops unless Qopt_obs collection is on). *)
let m_hits = Obs.Registry.counter Obs.Registry.default "plan_cache.hits"

let m_misses = Obs.Registry.counter Obs.Registry.default "plan_cache.misses"

let m_invalidations =
  Obs.Registry.counter Obs.Registry.default "plan_cache.invalidations"

let m_evictions = Obs.Registry.counter Obs.Registry.default "plan_cache.evictions"

let m_size = Obs.Registry.gauge Obs.Registry.default "plan_cache.size"

let m_hit_rate = Obs.Registry.gauge Obs.Registry.default "plan_cache.hit_rate_pct"

(* Flush-driven invalidations ({!bump_stats}) are counted into
   [plan_cache.invalidations] like lookup-driven ones, but they are not
   probes: a bulk stats flush of N entries must not deflate the hit-rate
   gauge, whose denominator counts lookups only.  This counter is
   internal bookkeeping for that subtraction, not a registered metric. *)
let m_flush_invalidations = Obs.Counter.make "plan_cache.flush_invalidations"

let update_hit_rate () =
  if !Obs.Control.on then begin
    let h = Obs.Counter.value m_hits in
    let probes =
      h + Obs.Counter.value m_misses + Obs.Counter.value m_invalidations
      - Obs.Counter.value m_flush_invalidations
    in
    if probes > 0 then
      Obs.Gauge.set m_hit_rate (float_of_int h /. float_of_int probes *. 100.0)
  end

type config = {
  slack : float;
  capacity : int;
}

let default_config = { slack = 0.5; capacity = 512 }

type invalidation =
  | Envelope
  | Stats_generation

let invalidation_string = function
  | Envelope -> "envelope"
  | Stats_generation -> "stats_generation"

type 'a outcome =
  | Hit of { plan : O.Plan.t; payload : 'a }
  | Miss
  | Invalidated of invalidation

type 'a entry = {
  e_plan : O.Plan.t;
  e_payload : 'a;
  e_envelope : (string * float * float) array;
      (* (pred signature, lo, hi), sorted — the validity region *)
  e_deps : (string * int) array;  (* dependent table, generation at store *)
  mutable e_tick : int;  (* LRU clock value of the last touch *)
}

(* A shared cache is striped like {!Stmt_cache}: the key hash picks one of
   N independently locked stripes, each a self-contained cache — its own
   table, LRU clock, tallies, capacity share, and its own copy of the
   per-table statistics generations.  Duplicating the generations per
   stripe keeps every lookup single-lock (no shared generation table to
   consult); {!bump_stats} walks the stripes one at a time, so a lookup
   racing a bump sees each stripe either before or after its flush —
   never a torn state within one stripe. *)
type 'a stripe = {
  tbl : (string, 'a entry) Hashtbl.t;
  gens : (string, int) Hashtbl.t;  (* per-table statistics generation *)
  cap : int;  (* this stripe's share of cfg.capacity *)
  mutable tick : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_invalidations : int;
  mutable s_evictions : int;
  lock : Obs.Lock.t option;
}

type 'a t = {
  cfg : config;
  strs : 'a stripe array;
}

let default_stripes = 8

let create ?(shared = false) ?stripes ?(config = default_config) () =
  let n =
    if not shared then 1
    else
      (* Never more stripes than capacity: a zero-capacity stripe could
         not honour the global size bound. *)
      let requested =
        match stripes with Some n when n >= 1 -> min n 64 | Some _ | None -> default_stripes
      in
      max 1 (min requested config.capacity)
  in
  {
    cfg = config;
    strs =
      Array.init n (fun i ->
          {
            tbl = Hashtbl.create 64;
            gens = Hashtbl.create 16;
            (* Distribute capacity exactly: stripe sizes sum to cfg.capacity. *)
            cap = (config.capacity / n) + (if i < config.capacity mod n then 1 else 0);
            tick = 0;
            s_hits = 0;
            s_misses = 0;
            s_invalidations = 0;
            s_evictions = 0;
            lock = (if shared then Some (Obs.Lock.create "plan_cache") else None);
          });
  }

let stripes t = Array.length t.strs

let stripe_of t key = t.strs.(Hashtbl.hash key mod Array.length t.strs)

let with_stripe s f =
  match s.lock with
  | None -> f ()
  | Some l -> Obs.Lock.with_lock l f

(* Estimated selectivity of every local predicate across all blocks,
   labelled by predicate signature and sorted: duplicate signatures (the
   same column compared twice) pair up positionally, smallest selectivity
   first, on both the store and the lookup side. *)
let selectivities block =
  let acc = ref [] in
  O.Query_block.iter_blocks
    (fun b ->
      List.iter
        (fun p ->
          if not (O.Pred.is_join p) then
            acc :=
              ( Stmt_cache.pred_signature b p,
                O.Cardinality.local_selectivity O.Cardinality.Full b p )
              :: !acc)
        b.O.Query_block.preds)
    block;
  Array.of_list (List.sort compare !acc)

let dep_tables block =
  let acc = ref [] in
  O.Query_block.iter_blocks
    (fun b ->
      for q = 0 to O.Query_block.n_quantifiers b - 1 do
        acc :=
          (O.Query_block.quantifier b q).O.Quantifier.table
            .Qopt_catalog.Table.name
          :: !acc
      done)
    block;
  List.sort_uniq String.compare !acc

let generation_unlocked s name =
  Option.value ~default:0 (Hashtbl.find_opt s.gens name)

let touch s e =
  s.tick <- s.tick + 1;
  e.e_tick <- s.tick

let size_unmerged t =
  Array.fold_left
    (fun acc s -> acc + with_stripe s (fun () -> Hashtbl.length s.tbl))
    0 t.strs

(* The size gauge needs a cross-stripe sweep; refresh it outside any
   stripe lock so no operation ever holds two locks. *)
let set_size t =
  if !Obs.Control.on then Obs.Gauge.set m_size (float_of_int (size_unmerged t))

let evict_lru s =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, tick) when tick <= e.e_tick -> ()
      | _ -> victim := Some (k, e.e_tick))
    s.tbl;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove s.tbl k;
    s.s_evictions <- s.s_evictions + 1;
    Obs.Counter.incr m_evictions

let store t ?key block ~plan payload =
  let key = match key with Some k -> k | None -> Stmt_cache.signature block in
  (* Selectivity estimation is pure over the block and the (immutable)
     histograms it references: compute outside the lock. *)
  let envelope =
    Array.map
      (fun (sg, s) -> (sg, s *. (1.0 -. t.cfg.slack), s *. (1.0 +. t.cfg.slack)))
      (selectivities block)
  in
  let deps = dep_tables block in
  let s = stripe_of t key in
  with_stripe s (fun () ->
      if (not (Hashtbl.mem s.tbl key)) && Hashtbl.length s.tbl >= s.cap then
        evict_lru s;
      let e =
        {
          e_plan = plan;
          e_payload = payload;
          e_envelope = envelope;
          e_deps =
            Array.of_list
              (List.map (fun n -> (n, generation_unlocked s n)) deps);
          e_tick = 0;
        }
      in
      touch s e;
      Hashtbl.replace s.tbl key e);
  set_size t

let within_envelope sels env =
  Array.length sels = Array.length env
  &&
  let ok = ref true in
  Array.iteri
    (fun i (sg, s) ->
      let sg', lo, hi = env.(i) in
      if not (String.equal sg sg' && lo <= s && s <= hi) then ok := false)
    sels;
  !ok

let revalidate e sels gen_of =
  if Array.exists (fun (n, g) -> gen_of n <> g) e.e_deps then
    Some Stats_generation
  else if not (within_envelope sels e.e_envelope) then Some Envelope
  else None

let lookup t ?key block =
  let key = match key with Some k -> k | None -> Stmt_cache.signature block in
  let sels = selectivities block in
  let s = stripe_of t key in
  let outcome =
    with_stripe s (fun () ->
        match Hashtbl.find_opt s.tbl key with
        | None ->
          s.s_misses <- s.s_misses + 1;
          Obs.Counter.incr m_misses;
          update_hit_rate ();
          Miss
        | Some e -> (
          match revalidate e sels (generation_unlocked s) with
          | Some why ->
            Hashtbl.remove s.tbl key;
            s.s_invalidations <- s.s_invalidations + 1;
            Obs.Counter.incr m_invalidations;
            update_hit_rate ();
            Invalidated why
          | None ->
            touch s e;
            s.s_hits <- s.s_hits + 1;
            Obs.Counter.incr m_hits;
            update_hit_rate ();
            Hit { plan = e.e_plan; payload = e.e_payload }))
  in
  (match outcome with Invalidated _ -> set_size t | Hit _ | Miss -> ());
  outcome

let bump_stats t table =
  let flushed =
    Array.fold_left
      (fun acc s ->
        acc
        + with_stripe s (fun () ->
              Hashtbl.replace s.gens table (generation_unlocked s table + 1);
              let victims =
                Hashtbl.fold
                  (fun k e acc ->
                    if Array.exists (fun (n, _) -> String.equal n table) e.e_deps
                    then k :: acc
                    else acc)
                  s.tbl []
              in
              List.iter (Hashtbl.remove s.tbl) victims;
              let n = List.length victims in
              if n > 0 then begin
                s.s_invalidations <- s.s_invalidations + n;
                Obs.Counter.add m_invalidations n;
                (* No lookups occurred: record the flushes so the hit-rate
                   denominator can exclude them, and leave the gauge as is. *)
                Obs.Counter.add m_flush_invalidations n
              end;
              n))
      0 t.strs
  in
  if flushed > 0 then set_size t;
  flushed

(* Every stripe's generations move in lock step under {!bump_stats}, so
   any one stripe answers for the cache; use the key-independent first. *)
let generation t name =
  let s = t.strs.(0) in
  with_stripe s (fun () -> generation_unlocked s name)

let envelope t key =
  let s = stripe_of t key in
  with_stripe s (fun () ->
      Option.map
        (fun e -> Array.to_list e.e_envelope)
        (Hashtbl.find_opt s.tbl key))

let size = size_unmerged

let sum_stripes t f =
  Array.fold_left (fun acc s -> acc + with_stripe s (fun () -> f s)) 0 t.strs

let hits t = sum_stripes t (fun s -> s.s_hits)

let misses t = sum_stripes t (fun s -> s.s_misses)

let invalidations t = sum_stripes t (fun s -> s.s_invalidations)

let evictions t = sum_stripes t (fun s -> s.s_evictions)
