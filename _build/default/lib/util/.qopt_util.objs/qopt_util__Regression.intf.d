lib/util/regression.mli:
