(** Wall-clock timing helpers.

    All figures in the paper compare wall-clock compilation time against
    wall-clock estimation time, so the harness times with a monotonic-enough
    gettimeofday and accumulates per-category buckets (see
    {!Qopt_optimizer.Instrument}). *)

val now : unit -> float
(** Seconds since the epoch, sub-microsecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] once and returns its result with elapsed seconds. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] [repeats] times (default 3) and returns
    the last result together with the median elapsed time, damping scheduler
    noise in the experiment harness. *)

type bucket
(** A mutable accumulator of elapsed seconds. *)

val bucket : unit -> bucket

val add_to : bucket -> (unit -> 'a) -> 'a
(** Runs the thunk, adding its elapsed time to the bucket. *)

val elapsed : bucket -> float

val reset : bucket -> unit
