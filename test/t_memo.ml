(* MEMO: entry management, caching, dominance pruning, plan sharing. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

let block = Helpers.chain ~order_by:true 3

let mk_plan ?(order = []) ?partition ~cost tables =
  {
    O.Plan.op = O.Plan.Seq_scan (Bitset.min_elt tables);
    tables;
    order;
    partition;
    card = 100.0;
    cost;
  }

let entry_tests =
  [
    t "find_or_create is idempotent" (fun () ->
        let memo = O.Memo.create block in
        let e1, created1 = O.Memo.find_or_create memo (Helpers.set [ 0; 1 ]) in
        let e2, created2 = O.Memo.find_or_create memo (Helpers.set [ 0; 1 ]) in
        Alcotest.(check bool) "first creates" true created1;
        Alcotest.(check bool) "second reuses" false created2;
        Alcotest.(check bool) "same entry" true (e1 == e2);
        Alcotest.(check int) "one entry" 1 (O.Memo.n_entries memo));
    t "iter_entries_of_size" (fun () ->
        let memo = O.Memo.create block in
        ignore (O.Memo.find_or_create memo (Helpers.set [ 0 ]));
        ignore (O.Memo.find_or_create memo (Helpers.set [ 1 ]));
        ignore (O.Memo.find_or_create memo (Helpers.set [ 0; 1 ]));
        let count size =
          let n = ref 0 in
          O.Memo.iter_entries_of_size memo size (fun _ -> incr n);
          !n
        in
        Alcotest.(check int) "two singletons" 2 (count 1);
        Alcotest.(check int) "one pair" 1 (count 2);
        Alcotest.(check int) "no triples" 0 (count 3));
    t "card_of caches" (fun () ->
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        let c1 = O.Memo.card_of memo O.Cardinality.Full e in
        let c2 = O.Memo.card_of memo O.Cardinality.Full e in
        Alcotest.(check (float 0.0)) "same" c1 c2;
        Alcotest.(check bool) "cached" true (e.O.Memo.card_cache <> None));
    t "equiv_of reflects internal predicates" (fun () ->
        let memo = O.Memo.create block in
        let pair, _ = O.Memo.find_or_create memo (Helpers.set [ 0; 1 ]) in
        let eq = O.Memo.equiv_of memo pair in
        Alcotest.(check bool) "0.j1 ~ 1.j1" true (O.Equiv.same eq (cr 0 "j1") (cr 1 "j1"));
        Alcotest.(check bool) "not 2" false (O.Equiv.same eq (cr 0 "j1") (cr 2 "j1")));
    t "applicable_orders filters retirement" (fun () ->
        let memo = O.Memo.create block in
        let top, _ = O.Memo.find_or_create memo (O.Query_block.all_tables block) in
        let orders = O.Memo.applicable_orders memo top in
        (* At the top only the ORDER BY survives (all join keys retired). *)
        Alcotest.(check int) "one" 1 (List.length orders);
        Alcotest.(check bool) "is ordering" true
          ((List.hd orders).O.Order_prop.kind = O.Order_prop.Ordering));
  ]

let pruning_tests =
  [
    t "cheaper DC plan prunes costlier DC plan" (fun () ->
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e (mk_plan ~cost:10.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e (mk_plan ~cost:20.0 (Helpers.set [ 0 ]));
        Alcotest.(check int) "one kept" 1 (List.length (O.Memo.plans e));
        Alcotest.(check int) "one pruned" 1 (O.Memo.stats memo).O.Memo.pruned);
    t "new cheaper plan evicts dominated plan" (fun () ->
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e (mk_plan ~cost:20.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e (mk_plan ~cost:10.0 (Helpers.set [ 0 ]));
        Alcotest.(check int) "one kept" 1 (List.length (O.Memo.plans e));
        Alcotest.(check (float 0.0)) "the cheap one" 10.0
          (List.hd (O.Memo.plans e)).O.Plan.cost);
    t "ordered plan survives a cheaper unordered plan" (fun () ->
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        (* t0.v is the ORDER BY column: interesting at every entry with t0. *)
        O.Memo.insert_plan memo e (mk_plan ~cost:10.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e (mk_plan ~order:[ cr 0 "v" ] ~cost:50.0 (Helpers.set [ 0 ]));
        Alcotest.(check int) "both kept" 2 (List.length (O.Memo.plans e)));
    t "plan sharing: cheap general order absorbs specific one" (fun () ->
        (* Orders on (j1) and (j1, v): a cheaper plan ordered on both prunes
           the plan ordered on j1 alone — the paper's overestimation source. *)
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e
          (mk_plan ~order:[ cr 0 "j1"; cr 0 "v" ] ~cost:10.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e (mk_plan ~order:[ cr 0 "j1" ] ~cost:20.0 (Helpers.set [ 0 ]));
        Alcotest.(check int) "shared" 1 (List.length (O.Memo.plans e)));
    t "expensive unordered plan pruned by ordered cheaper plan" (fun () ->
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e (mk_plan ~order:[ cr 0 "v" ] ~cost:10.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e (mk_plan ~cost:30.0 (Helpers.set [ 0 ]));
        Alcotest.(check int) "one kept" 1 (List.length (O.Memo.plans e)));
    t "interesting partitions keep plans apart" (fun () ->
        let pblock =
          Helpers.chain 2
        in
        let memo = O.Memo.create pblock in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        let p1 = O.Partition_prop.hash [ cr 0 "j1" ] in
        (* j1 is the future join column: partition on it is interesting. *)
        O.Memo.insert_plan memo e (mk_plan ~partition:p1 ~cost:10.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e
          (mk_plan ~partition:(O.Partition_prop.hash [ cr 0 "j2" ]) ~cost:5.0
             (Helpers.set [ 0 ]));
        Alcotest.(check int) "both kept" 2 (List.length (O.Memo.plans e)));
    t "best_plan picks cheapest" (fun () ->
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e (mk_plan ~order:[ cr 0 "v" ] ~cost:50.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e (mk_plan ~cost:10.0 (Helpers.set [ 0 ]));
        match O.Memo.best_plan e with
        | Some p -> Alcotest.(check (float 0.0)) "cheapest" 10.0 p.O.Plan.cost
        | None -> Alcotest.fail "expected a plan");
    t "best_plan_satisfying respects order" (fun () ->
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e (mk_plan ~cost:10.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e (mk_plan ~order:[ cr 0 "v" ] ~cost:50.0 (Helpers.set [ 0 ]));
        let want = O.Order_prop.make O.Order_prop.Ordering [ cr 0 "v" ] in
        (match O.Memo.best_plan_satisfying memo e want with
        | Some p -> Alcotest.(check (float 0.0)) "ordered one" 50.0 p.O.Plan.cost
        | None -> Alcotest.fail "expected ordered plan");
        let impossible = O.Order_prop.make O.Order_prop.Ordering [ cr 0 "j2" ] in
        Alcotest.(check bool) "no match" true
          (O.Memo.best_plan_satisfying memo e impossible = None));
    t "kept_plans and memo_bytes" (fun () ->
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e (mk_plan ~cost:10.0 (Helpers.set [ 0 ]));
        Alcotest.(check int) "one" 1 (O.Memo.kept_plans memo);
        Alcotest.(check (float 0.0)) "bytes" O.Plan.approx_bytes (O.Memo.memo_bytes memo));
    t "kept_plans counter equals a full MEMO walk" (fun () ->
        (* The counter is maintained incrementally across insertions AND
           dominance drops; re-derive it the slow way and compare. *)
        let memo = O.Memo.create block in
        let e, _ = O.Memo.find_or_create memo (Helpers.set [ 0 ]) in
        O.Memo.insert_plan memo e (mk_plan ~cost:20.0 (Helpers.set [ 0 ]));
        O.Memo.insert_plan memo e
          (mk_plan ~order:[ cr 0 "v" ] ~cost:50.0 (Helpers.set [ 0 ]));
        (* Dominates both previous plans: drops two, keeps one. *)
        O.Memo.insert_plan memo e
          (mk_plan ~order:[ cr 0 "v" ] ~cost:10.0 (Helpers.set [ 0 ]));
        (* And a dominated arrival that never lands. *)
        O.Memo.insert_plan memo e (mk_plan ~cost:30.0 (Helpers.set [ 0 ]));
        let e2, _ = O.Memo.find_or_create memo (Helpers.set [ 1 ]) in
        O.Memo.insert_plan memo e2 (mk_plan ~cost:5.0 (Helpers.set [ 1 ]));
        let walk = ref 0 in
        O.Memo.iter_entries
          (fun e -> walk := !walk + List.length (O.Memo.plans e))
          memo;
        Alcotest.(check int) "walk agrees" !walk (O.Memo.kept_plans memo);
        Alcotest.(check int) "two plans" 2 (O.Memo.kept_plans memo));
    t "counts helpers" (fun () ->
        let c = O.Memo.counts_zero () in
        O.Memo.counts_add c O.Join_method.NLJN 3;
        O.Memo.counts_add c O.Join_method.MGJN 2;
        O.Memo.counts_add c O.Join_method.HSJN 1;
        Alcotest.(check int) "total" 6 (O.Memo.counts_total c);
        Alcotest.(check int) "get" 2 (O.Memo.counts_get c O.Join_method.MGJN));
  ]

let suite = entry_tests @ pruning_tests
