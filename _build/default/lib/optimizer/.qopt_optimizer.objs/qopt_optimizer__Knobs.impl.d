lib/optimizer/knobs.ml: Format
