(** Blocking client for the compile service.

    One connection, one thread of control.  Requests may be pipelined:
    [send] writes without waiting, [recv] returns the next reply off the
    wire, and [request] waits for the reply whose [id] matches —
    buffering any out-of-order replies (SJF reorders completions) for
    later [recv]/[request] calls. *)

type t

val connect : Server.addr -> t
(** Raises [Unix.Unix_error] if the server is not reachable. *)

val send : t -> Proto.request -> unit

val recv : t -> Proto.reply option
(** Next reply: a buffered one if any, else read from the socket.
    [None] on clean EOF (server closed the connection). *)

val request : t -> Proto.request -> Proto.reply option
(** [send] then read until the reply matching the request's [id]
    arrives; replies to other ids are buffered in arrival order. *)

val fresh_id : t -> int
(** Monotonically increasing per-connection request ids, from 1. *)

val close : t -> unit
