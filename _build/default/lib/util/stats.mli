(** Summary statistics and error metrics used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val median : float list -> float
(** Median; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val minimum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val pct_error : actual:float -> estimate:float -> float
(** Signed relative error in percent, [(estimate - actual) / actual * 100].
    Returns 0 when [actual] is 0 and [estimate] is 0, and +/-infinity when
    only [actual] is 0. *)

val abs_pct_error : actual:float -> estimate:float -> float
(** Absolute value of {!pct_error}. *)

val mean_abs_pct_error : (float * float) list -> float
(** Mean of {!abs_pct_error} over [(actual, estimate)] pairs. *)

val max_abs_pct_error : (float * float) list -> float
(** Max of {!abs_pct_error} over [(actual, estimate)] pairs; 0 on []. *)

val r_squared : actual:float list -> fitted:float list -> float
(** Coefficient of determination of [fitted] against [actual]. *)
