lib/catalog/col_type.mli: Format
