examples/workload_advisor.ml: Cote Float Format List Qopt_optimizer Qopt_util Qopt_workloads
