(** Minimal JSON document model, printer and parser.

    The wire protocol of {!Qopt_server} and the metrics export of
    {!Qopt_obs} both speak JSON; this module keeps the repo
    dependency-free (no yojson).  The printer emits compact one-line
    documents; the parser accepts standard JSON with the usual
    whitespace, escape sequences and nesting.  Numbers are floats
    (like JavaScript); [NaN]/[infinity] print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering, keys in the given order. *)

val parse : string -> (t, string) result
(** Parses one JSON document (trailing whitespace allowed).  The error
    string includes the byte offset of the failure. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val get_string : t -> string option

val get_float : t -> float option

val get_int : t -> int option
(** [Num] rounded toward zero. *)

val get_bool : t -> bool option

(** {2 Constructors} *)

val int : int -> t

val opt : ('a -> t) -> 'a option -> t
(** [Null] for [None]. *)
