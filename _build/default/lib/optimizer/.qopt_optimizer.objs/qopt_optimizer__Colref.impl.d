lib/optimizer/colref.ml: Format Hashtbl Int List String
