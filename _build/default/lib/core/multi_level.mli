(** Piggyback estimation for multiple optimization levels (Section 6.2).

    "It's possible to estimate the compilation time of multiple levels of
    optimization in a single pass, as long as the search space of the
    highest level subsumes that of all other levels."  One enumeration at
    the highest level also accumulates counts for every lower level by
    checking, per enumerated join, whether the lower level's knobs would
    have enumerated it.  The property lists are shared (an approximation:
    a lower level might propagate slightly smaller lists). *)

module O = Qopt_optimizer

type level = {
  level_name : string;
  level_knobs : O.Knobs.t;
}

type level_counts = {
  lc_name : string;
  lc_joins : int;
  lc_nljn : int;
  lc_mgjn : int;
  lc_hsjn : int;
}

val lc_total : level_counts -> int

val piggyback :
  ?options:Accumulate.options ->
  base:O.Knobs.t ->
  levels:level list ->
  O.Env.t ->
  O.Query_block.t ->
  level_counts list * float
(** Runs one plan-estimate pass at [base] (which must subsume every level)
    and returns per-level counts — the base level first under the name
    ["base"] — together with the elapsed estimation time for the whole
    pass. *)
