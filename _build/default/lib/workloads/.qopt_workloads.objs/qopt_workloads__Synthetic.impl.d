lib/workloads/synthetic.ml: Array List Printf Qopt_catalog Qopt_optimizer Workload
