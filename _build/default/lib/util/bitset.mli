(** Small dense bit sets over the integers [0, 61].

    The optimizer uses values of this type to represent sets of quantifiers
    (table references) of a query block.  Queries with more than 62 table
    references are outside the scope of dynamic-programming join enumeration
    (the paper's workloads top out well below 30), so a single immediate
    integer suffices and keeps MEMO hashing cheap. *)

type t
(** An immutable set of small integers. *)

val max_elt : int
(** Largest storable element (61 — the largest power of two that fits a
    tagged OCaml integer with room for [iter_subsets]'s arithmetic). *)

val empty : t

val is_empty : t -> bool

val singleton : int -> t
(** [singleton i] is [{i}].  Raises [Invalid_argument] if [i] is out of
    range. *)

val add : int -> t -> t

val remove : int -> t -> t

val mem : int -> t -> bool

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val disjoint : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order suitable for canonicalizing unordered pairs of sets. *)

val hash : t -> int

val cardinal : t -> int

val min_elt : t -> int
(** Raises [Not_found] on the empty set. *)

val elements : t -> int list
(** Elements in increasing order. *)

val of_list : int list -> t

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (int -> unit) -> t -> unit

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

val full : int -> t
(** [full n] is [{0, .., n-1}]. *)

val iter_subsets : t -> (t -> unit) -> unit
(** [iter_subsets s f] applies [f] to every non-empty proper subset of [s].
    Used by exhaustive test oracles; the enumerator itself iterates MEMO
    entries instead. *)

val to_int : t -> int
(** The underlying bit pattern (injective); handy as a hash-table key. *)

val of_int : int -> t
(** Inverse of {!to_int}.  Raises [Invalid_argument] on negative input. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0,3,5}]. *)
