type report = {
  bound : float;
  generated : int;
  prunable : int;
  fraction : float;
  kept : int;
  kept_prunable : int;
  kept_fraction : float;
}

let analyze env ?(knobs = Knobs.default) block =
  let bound =
    match Greedy.optimize env block with
    | Some plan -> plan.Plan.cost
    | None -> infinity
  in
  let memo = Memo.create block in
  let instr = Instrument.create () in
  let gen = Plan_gen.create ~cost_bound:bound env memo instr in
  Enumerator.run ~knobs ~card_of:(Plan_gen.card_of gen) memo
    (Plan_gen.consumer gen);
  let generated = Memo.counts_total (Memo.stats memo).Memo.generated in
  let prunable = Plan_gen.bound_prunable gen in
  let kept = ref 0 and kept_prunable = ref 0 in
  Memo.iter_entries
    (fun e ->
      List.iter
        (fun (p : Plan.t) ->
          incr kept;
          if p.Plan.cost > bound then incr kept_prunable)
        (Memo.plans e))
    memo;
  {
    bound;
    generated;
    prunable;
    fraction = (if generated = 0 then 0.0 else float_of_int prunable /. float_of_int generated);
    kept = !kept;
    kept_prunable = !kept_prunable;
    kept_fraction =
      (if !kept = 0 then 0.0 else float_of_int !kept_prunable /. float_of_int !kept);
  }
