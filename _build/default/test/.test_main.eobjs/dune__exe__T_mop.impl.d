test/t_mop.ml: Alcotest Cote Helpers Qopt_mop Qopt_optimizer
