module Bitset = Qopt_util.Bitset
module Table = Qopt_catalog.Table
module Obs = Qopt_obs

(* Process-wide plan-generation metrics (no-ops unless Qopt_obs is
   enabled). *)
let m_nljn = Obs.Registry.counter Obs.Registry.default "plan_gen.plans.nljn"

let m_mgjn = Obs.Registry.counter Obs.Registry.default "plan_gen.plans.mgjn"

let m_hsjn = Obs.Registry.counter Obs.Registry.default "plan_gen.plans.hsjn"

let m_scan = Obs.Registry.counter Obs.Registry.default "plan_gen.plans.scan"

let m_cost = Obs.Registry.counter Obs.Registry.default "plan_gen.cost_calls"

let m_of_method = function
  | Join_method.NLJN -> m_nljn
  | Join_method.MGJN -> m_mgjn
  | Join_method.HSJN -> m_hsjn

type t = {
  env : Env.t;
  params : Cost_model.params;
  memo : Memo.t;
  block : Query_block.t;
  instr : Instrument.t;
  cost_bound : float option;
  views : Mat_view.t list;
  mutable prunable : int;
  mutable mv_tests : int;
  mutable mv_matches : int;
}

let create ?cost_bound ?(views = []) env memo instr =
  {
    env;
    params = Cost_model.params env;
    memo;
    block = Memo.block memo;
    instr;
    cost_bound;
    views;
    prunable = 0;
    mv_tests = 0;
    mv_matches = 0;
  }

let bound_prunable t = t.prunable

let mv_tests t = t.mv_tests

let mv_matches t = t.mv_matches

let card_of t entry =
  Instrument.card t.instr (fun () -> Memo.card_of t.memo Cardinality.Full entry)

let track_bound t (p : Plan.t) =
  match t.cost_bound with
  | Some b when p.Plan.cost > b -> t.prunable <- t.prunable + 1
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Scan planning (eager order policy at the leaves, Section 4 point 1) *)
(* ------------------------------------------------------------------ *)

let default_partition env block q =
  if Env.is_parallel env then
    match Interesting.physical_partition block q with
    | Some p -> Some p
    | None ->
      (* Unpartitioned tables are treated as hash-partitioned on their first
         column so that every parallel plan carries a partition value; a
         zero-column table (a degenerate catalog entry) has no column to
         hash on and stays unpartitioned. *)
      let table = (Query_block.quantifier block q).Quantifier.table in
      (match Table.column_names table with
      | [] -> None
      | col :: _ -> Some (Partition_prop.hash [ Colref.make q col ]))
  else None

let ptag = function
  | Partition_prop.Hash -> 0
  | Partition_prop.Range -> 1

(* Distinct partition values among a plan list, with the cheapest plan
   carrying each; serial mode yields the single [None] group.  Each plan's
   partition canonicalizes (and interns) once via [key_of]; group matching
   is integer equality, so a plan walks the group list without any further
   structural comparison.  [key_of None] must be negative and [key_of
   (Some p)] non-negative — group identity follows [Partition_prop.
   equal_under]. *)
let partition_groups_keyed key_of plans =
  List.fold_left
    (fun groups (p : Plan.t) ->
      let k = key_of p.Plan.partition in
      let rec place acc = function
        | [] -> List.rev ((k, p.Plan.partition, p) :: acc)
        | ((k', part, (best : Plan.t)) as g) :: rest ->
          if k = k' then
            if p.Plan.cost < best.Plan.cost then
              List.rev_append acc ((k', part, p) :: rest)
            else List.rev_append acc (g :: rest)
          else place (g :: acc) rest
      in
      place [] groups)
    [] plans

(* The interned partition key of a plan's partition under the join's
   equivalence: canonical columns hash-consed in the MEMO's property table,
   kind folded into the low bit. *)
let memo_part_key t equiv = function
  | None -> Prop_id.none
  | Some (p : Partition_prop.t) ->
    (2 * Memo.intern_cols t.memo (Partition_prop.canonical equiv p))
    + ptag p.Partition_prop.kind

(* The public variant keeps its structural signature (it is differentially
   tested standalone): a throwaway intern table scopes the ids. *)
let partition_groups equiv plans =
  let tbl = Prop_id.create () in
  let key_of = function
    | None -> Prop_id.none
    | Some (p : Partition_prop.t) ->
      (2 * Prop_id.id_of_cols tbl (Partition_prop.canonical equiv p))
      + ptag p.Partition_prop.kind
  in
  List.map (fun (_, part, best) -> (part, best)) (partition_groups_keyed key_of plans)

let scan_plans t (entry : Memo.entry) =
  let q = Bitset.min_elt entry.Memo.tables in
  let table = (Query_block.quantifier t.block q).Quantifier.table in
  let card = Memo.card_of t.memo Cardinality.Full entry in
  let partition = default_partition t.env t.block q in
  let base =
    {
      Plan.op = Plan.Seq_scan q;
      tables = entry.Memo.tables;
      order = [];
      partition;
      card;
      cost = Cost_model.seq_scan t.params table;
    }
  in
  let sel = card /. Float.max 1.0 table.Table.row_count in
  let eager =
    List.map
      (fun (o : Order_prop.t) ->
        let cols = Order_prop.canonical Equiv.empty o in
        let col_names = List.map (fun (c : Colref.t) -> c.Colref.col) cols in
        match Table.index_providing table col_names with
        | Some idx ->
          {
            Plan.op = Plan.Index_scan (q, idx);
            tables = entry.Memo.tables;
            order = List.map (fun col -> Colref.make q col) idx.Qopt_catalog.Index.columns;
            partition;
            card;
            cost = Cost_model.index_scan t.params table ~sel;
          }
        | None ->
          {
            Plan.op = Plan.Sort base;
            tables = entry.Memo.tables;
            order = cols;
            partition;
            card;
            cost =
              base.Plan.cost
              +. Cost_model.sort t.params ~rows:card
                   ~width:(float_of_int (Table.row_width table));
          })
      (Interesting.orders_for_table t.block q)
  in
  (* Access-path selection: indexes whose leading column is constrained by
     an equality predicate give cheap selective access. *)
  let filter_scans =
    List.map
      (fun (idx : Qopt_catalog.Index.t) ->
        {
          Plan.op = Plan.Index_scan (q, idx);
          tables = entry.Memo.tables;
          order = List.map (fun col -> Colref.make q col) idx.Qopt_catalog.Index.columns;
          partition;
          card;
          cost = Cost_model.index_scan t.params table ~sel;
        })
      (Interesting.filter_indexes t.block q)
  in
  let plans = (base :: eager) @ filter_scans in
  let n_plans = List.length plans in
  Obs.Counter.add m_scan n_plans;
  Obs.Counter.add m_cost n_plans;
  (Memo.stats t.memo).Memo.scan_plans <-
    (Memo.stats t.memo).Memo.scan_plans + n_plans;
  Instrument.save t.instr (fun () ->
      List.iter (Memo.insert_plan t.memo entry) plans)


(* ------------------------------------------------------------------ *)
(* Join planning                                                       *)
(* ------------------------------------------------------------------ *)

(* Partition bookkeeping for one join plan in parallel mode: the result
   carries the outer's partition; the inner pays a repartition or broadcast
   when it is not collocated with the join columns.  [jc] (the first join
   column) and [wi] (the inner's row width) are per-direction constants
   computed once by [gen_direction]. *)
let parallel_adjust t equiv ~jc ~wi ~(outer : Plan.t) ~(inner : Plan.t) =
  if not (Env.is_parallel t.env) then (None, 0.0)
  else begin
    let keyed plan =
      match (plan.Plan.partition, jc) with
      | Some part, Some c -> Partition_prop.keyed_on equiv part c
      | Some _, None | None, _ -> false
    in
    let transfer =
      if keyed outer && keyed inner then 0.0
      else if keyed outer then
        Cost_model.repartition t.params ~rows:inner.Plan.card ~width:wi
      else Cost_model.broadcast t.params ~rows:inner.Plan.card ~width:wi
    in
    (outer.Plan.partition, transfer)
  end

(* Builds one join plan and the interned id of its normalized order — the
   signature work [Memo.insert_plan] would otherwise redo per insertion.
   The memoized widths [wo]/[wi]/[wout] (outer/inner/output table sets) are
   handed to the cost model. *)
let join_plan t equiv ~ctx ?(probe = None) ~jc ~wo ~wi ~wout ~method_
    ~(outer : Plan.t) ~(inner : Plan.t) ~preds ~out_card ~order ~sort_outer
    ~sort_inner () =
  let partition, transfer = parallel_adjust t equiv ~jc ~wi ~outer ~inner in
  Obs.Counter.incr m_cost;
  let cost =
    match method_ with
    | Join_method.NLJN ->
      Cost_model.nljn t.params t.block ~ctx ~probe ~width_outer:wo
        ~width_inner:wi ~width_out:wout ~outer ~inner ~out_card ()
    | Join_method.MGJN ->
      Cost_model.mgjn t.params t.block ~ctx ~width_outer:wo ~width_inner:wi
        ~width_out:wout ~outer ~inner ~out_card ~sort_outer ~sort_inner ()
    | Join_method.HSJN ->
      Cost_model.hsjn t.params t.block ~ctx ~width_inner:wi ~width_out:wout
        ~outer ~inner ~out_card ()
  in
  let p =
    {
      Plan.op = Plan.Join (method_, outer, inner, preds);
      tables = Bitset.union outer.Plan.tables inner.Plan.tables;
      order;
      partition;
      card = out_card;
      cost = cost +. transfer;
    }
  in
  track_bound t p;
  (p, Memo.intern_cols t.memo (Equiv.normalize_cols equiv order))

(* The Section 4 repartitioning heuristic: triggered when no kept plan of
   either input is partitioned on a join column. *)
let repart_heuristic_triggers t equiv ~preds ~x_plans ~(y : Memo.entry) =
  Env.is_parallel t.env && preds <> []
  &&
  let join_cols =
    List.concat_map
      (fun p ->
        match Pred.join_cols p with Some (l, r) -> [ l; r ] | None -> [])
      preds
  in
  let keyed (plan : Plan.t) =
    match plan.Plan.partition with
    | None -> false
    | Some part -> List.exists (Partition_prop.keyed_on equiv part) join_cols
  in
  not (List.exists keyed x_plans || List.exists keyed (Memo.plans y))

let repart_variant t equiv ~ctx ~jc ~wo ~wi ~wout ~method_ ~(x : Memo.entry)
    ~(y : Memo.entry) ~preds ~out_card ~merge_cols =
  match (Memo.best_plan x, Memo.best_plan y) with
  | Some bx, Some by ->
    Option.map
      (fun c ->
        let part = Partition_prop.hash [ Equiv.repr equiv c ] in
        let transfer =
          Cost_model.repartition t.params ~rows:bx.Plan.card ~width:wo
          +. Cost_model.repartition t.params ~rows:by.Plan.card ~width:wi
        in
        (* Hash repartitioning interleaves streams: order survives only if
           re-sorted, which MGJN does as part of the join. *)
        let order, sort_flags =
          match method_ with
          | Join_method.MGJN -> (merge_cols, (true, true))
          | Join_method.NLJN | Join_method.HSJN -> ([], (false, false))
        in
        let sort_outer, sort_inner = sort_flags in
        let base, norm =
          join_plan t equiv ~ctx ~jc ~wo ~wi ~wout ~method_ ~outer:bx ~inner:by
            ~preds ~out_card ~order ~sort_outer ~sort_inner ()
        in
        let p = { base with Plan.partition = Some part; cost = base.Plan.cost +. transfer } in
        track_bound t p;
        (p, norm))
      jc
  | None, _ | _, None -> None


let gen_direction t event ~(x : Memo.entry) ~(y : Memo.entry) =
  let j = event.Enumerator.result in
  let equiv = Memo.equiv_of t.memo j in
  let preds = event.Enumerator.preds in
  let out_card = Memo.card_of t.memo Cardinality.Full j in
  let stats = Memo.stats t.memo in
  match Memo.best_plan y with
  | None -> []
  | Some inner_best ->
    (* Per-direction constants, shared by every generated plan: the kept
       outer plans (one list materialization instead of four), their
       partition groups (once instead of twice), the memoized row widths,
       and the first join column. *)
    let x_plans = Memo.plans x in
    let repart = repart_heuristic_triggers t equiv ~preds ~x_plans ~y in
    let groups = partition_groups_keyed (memo_part_key t equiv) x_plans in
    let wo = Memo.width_of t.memo x in
    let wi = Memo.width_of t.memo y in
    let wout = Memo.width_of t.memo j in
    let jc =
      List.find_map
        (fun p -> match Pred.join_cols p with Some (l, _) -> Some l | None -> None)
        preds
    in
    (* The predicate-dependent part of costing is a logical property of the
       join: computed once here, shared by every generated plan. *)
    let ctx =
      Cost_model.join_context t.params t.block ~preds
        ~inner_card:inner_best.Plan.card
    in
    let probe =
      Cost_model.inner_probe_cost t.params t.block ~preds
        ~inner_tables:y.Memo.tables
    in
    (* NLJN: full propagation of the outer's order, one plan per kept outer
       plan.  For top-N queries, a pipelinable inner variant is additionally
       tried when the cheapest inner is blocking — pipelinable join plans
       must exist in the MEMO for the LIMIT to exploit. *)
    let pipe_inner =
      if t.block.Query_block.first_n <> None && not (Plan.pipelinable inner_best)
      then Memo.best_pipelinable_plan t.memo y
      else None
    in
    let nljn_plans =
      Instrument.nljn t.instr (fun () ->
          let base =
            List.concat_map
              (fun (po : Plan.t) ->
                join_plan t equiv ~ctx ~probe ~jc ~wo ~wi ~wout
                  ~method_:Join_method.NLJN ~outer:po ~inner:inner_best ~preds
                  ~out_card ~order:po.Plan.order ~sort_outer:false
                  ~sort_inner:false ()
                :: (match pipe_inner with
                   | Some inner when Plan.pipelinable po ->
                     [
                       join_plan t equiv ~ctx ~probe ~jc ~wo ~wi ~wout
                         ~method_:Join_method.NLJN ~outer:po ~inner ~preds
                         ~out_card ~order:po.Plan.order ~sort_outer:false
                         ~sort_inner:false ();
                     ]
                   | Some _ | None -> []))
              x_plans
          in
          let extra =
            if repart then
              Option.to_list
                (repart_variant t equiv ~ctx ~jc ~wo ~wi ~wout
                   ~method_:Join_method.NLJN ~x ~y ~preds ~out_card
                   ~merge_cols:[])
            else []
          in
          base @ extra)
    in
    let n_nljn = List.length nljn_plans in
    Memo.counts_add stats.Memo.generated Join_method.NLJN n_nljn;
    Obs.Counter.add (m_of_method Join_method.NLJN) n_nljn;
    (* MGJN: partial propagation — the canonical merge order plus covering
       outer orders. *)
    let mgjn_plans =
      if preds = [] then []
      else
        Instrument.mgjn t.instr (fun () ->
            match Interesting.merge_order equiv preds with
            | None -> []
            | Some mo ->
              let mo_cols = Order_prop.canonical equiv mo in
              let inner_sorted = Memo.best_plan_satisfying t.memo y mo in
              let inner, sort_inner =
                match inner_sorted with
                | Some p -> (p, false)
                | None -> (inner_best, true)
              in
              let covering =
                List.filter
                  (fun (po : Plan.t) ->
                    po.Plan.order <> []
                    && Order_prop.satisfied_by equiv mo po.Plan.order)
                  x_plans
              in
              let natural =
                List.map
                  (fun (po : Plan.t) ->
                    join_plan t equiv ~ctx ~jc ~wo ~wi ~wout
                      ~method_:Join_method.MGJN ~outer:po ~inner ~preds
                      ~out_card ~order:po.Plan.order ~sort_outer:false
                      ~sort_inner ())
                  covering
              in
              (* Sort-enforced merge joins (eager policy): one per distinct
                 outer partition lacking a natural covering plan.  Coverage
                 is integer membership on interned partition keys. *)
              let covering_keys =
                List.map
                  (fun (po : Plan.t) -> memo_part_key t equiv po.Plan.partition)
                  covering
              in
              let enforced =
                List.filter_map
                  (fun (k, _, (cheapest : Plan.t)) ->
                    if List.mem k covering_keys then None
                    else
                      Some
                        (join_plan t equiv ~ctx ~jc ~wo ~wi ~wout
                           ~method_:Join_method.MGJN ~outer:cheapest ~inner
                           ~preds ~out_card ~order:mo_cols ~sort_outer:true
                           ~sort_inner ()))
                  groups
              in
              let extra =
                if repart then
                  Option.to_list
                    (repart_variant t equiv ~ctx ~jc ~wo ~wi ~wout
                       ~method_:Join_method.MGJN ~x ~y ~preds ~out_card
                       ~merge_cols:mo_cols)
                else []
              in
              natural @ enforced @ extra)
    in
    let n_mgjn = List.length mgjn_plans in
    Memo.counts_add stats.Memo.generated Join_method.MGJN n_mgjn;
    Obs.Counter.add (m_of_method Join_method.MGJN) n_mgjn;
    (* HSJN: no order propagation — a single unordered plan. *)
    let hsjn_plans =
      Instrument.hsjn t.instr (fun () ->
          (* One unordered plan per distinct outer partition value. *)
          let base =
            List.map
              (fun (_, _, (cheapest : Plan.t)) ->
                join_plan t equiv ~ctx ~jc ~wo ~wi ~wout
                  ~method_:Join_method.HSJN ~outer:cheapest ~inner:inner_best
                  ~preds ~out_card ~order:[] ~sort_outer:false ~sort_inner:false
                  ())
              groups
          in
          let extra =
            if repart then
              Option.to_list
                (repart_variant t equiv ~ctx ~jc ~wo ~wi ~wout
                   ~method_:Join_method.HSJN ~x ~y ~preds ~out_card
                   ~merge_cols:[])
            else []
          in
          base @ extra)
    in
    let n_hsjn = List.length hsjn_plans in
    Memo.counts_add stats.Memo.generated Join_method.HSJN n_hsjn;
    Obs.Counter.add (m_of_method Join_method.HSJN) n_hsjn;
    nljn_plans @ mgjn_plans @ hsjn_plans

let on_join t (event : Enumerator.join_event) =
  let plans_lr =
    if event.Enumerator.left_outer_ok then
      gen_direction t event ~x:event.Enumerator.left ~y:event.Enumerator.right
    else []
  in
  let plans_rl =
    if event.Enumerator.right_outer_ok then
      gen_direction t event ~x:event.Enumerator.right ~y:event.Enumerator.left
    else []
  in
  Instrument.save t.instr (fun () ->
      List.iter
        (fun (p, norm) -> Memo.insert_plan ~norm t.memo event.Enumerator.result p)
        (plans_lr @ plans_rl))

(* Materialized-view matching: every new MEMO entry is tested against each
   registered view; a hit contributes a substitute scan of the materialized
   result (Section 6.2). *)
let try_views t (entry : Memo.entry) =
  if t.views <> [] then
    Instrument.mv t.instr (fun () ->
        List.iter
          (fun view ->
            t.mv_tests <- t.mv_tests + 1;
            if Mat_view.matches view t.block entry.Memo.tables then begin
              t.mv_matches <- t.mv_matches + 1;
              let plan =
                {
                  Plan.op = Plan.Mv_scan view.Mat_view.mv_name;
                  tables = entry.Memo.tables;
                  order = [];
                  partition =
                    (if Env.is_parallel t.env then
                       default_partition t.env t.block
                         (Qopt_util.Bitset.min_elt entry.Memo.tables)
                     else None);
                  card = Memo.card_of t.memo Cardinality.Full entry;
                  cost = Mat_view.substitute_cost t.params view;
                }
              in
              Memo.insert_plan t.memo entry plan
            end)
          t.views)

let on_entry t (entry : Memo.entry) =
  if Bitset.cardinal entry.Memo.tables = 1 then
    Instrument.scan t.instr (fun () -> scan_plans t entry);
  try_views t entry

let consumer t =
  { Enumerator.on_entry = on_entry t; Enumerator.on_join = on_join t }
