lib/core/stmt_cache.ml: Format Hashtbl List Printf Qopt_catalog Qopt_optimizer Qopt_util String
