examples/parallel_warehouse.ml: Cote Float Format List Qopt_optimizer Qopt_sql Qopt_workloads
