(* The qopt command-line interface.

   Subcommands:
     optimize   — compile a query (from a workload, or ad-hoc SQL over a
                  named schema) and show the plan and counters
     estimate   — run the COTE on the same query and show the prediction
     breakdown  — Figure 2-style time breakdown for one query
     batch      — compile/estimate whole workloads across a domain pool
     calibrate  — fit and print the time model for an environment
     experiment — run registered experiments by id
     list       — list workloads, their queries, and experiment ids *)

module O = Qopt_optimizer
module W = Qopt_workloads
module E = Qopt_experiments
module Obs = Qopt_obs
open Cmdliner

let env_of_string = function
  | "serial" -> Ok O.Env.serial
  | "parallel" -> Ok (O.Env.parallel ~nodes:4)
  | s -> Error (`Msg (Printf.sprintf "unknown environment %S (serial|parallel)" s))

let env_conv =
  Arg.conv
    ( (fun s -> env_of_string s),
      fun ppf env -> O.Env.pp ppf env )

let env_term =
  Arg.(value & opt env_conv O.Env.serial & info [ "e"; "env" ] ~doc:"serial or parallel")

let workload_names =
  [ "linear"; "star"; "cycle"; "real1"; "real2"; "random"; "tpch"; "calibration" ]

let schema_for env = function
  | "tpch" -> W.Tpch.schema ~partitioned:(O.Env.is_parallel env)
  | "warehouse" | "real1" | "real2" | "random" ->
    W.Warehouse.schema ~partitioned:(O.Env.is_parallel env)
  | s -> failwith (Printf.sprintf "unknown schema %S (tpch|warehouse)" s)

let resolve_block env ~workload ~query ~sql ~schema =
  match (sql, workload, query) with
  | Some text, _, _ ->
    let schema = schema_for env (Option.value ~default:"warehouse" schema) in
    Qopt_sql.Binder.parse_and_bind ~name:"adhoc" schema text
  | None, Some w, Some q ->
    (W.Workload.find (E.Common.workload env w) q).W.Workload.block
  | None, _, _ ->
    failwith "provide either --sql, or --workload and --query (see `qopt list`)"

let workload_term =
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~doc:"workload name")

let query_term =
  Arg.(value & opt (some string) None & info [ "q"; "query" ] ~doc:"query name")

let sql_term =
  Arg.(value & opt (some string) None & info [ "sql" ] ~doc:"ad-hoc SQL text")

let schema_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "schema" ] ~doc:"schema for --sql: warehouse (default) or tpch")

let wrap f = try `Ok (f ()) with Failure msg | Invalid_argument msg -> `Error (false, msg)

(* --metrics[=json]: enable Qopt_obs collection around the run and dump the
   default registry afterwards. *)
let metrics_term =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:"Collect optimizer metrics and dump the registry after the run \
              (text or json)")

let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some fmt ->
    if fmt <> "text" && fmt <> "json" then
      failwith (Printf.sprintf "unknown metrics format %S (text|json)" fmt);
    Obs.Control.set_enabled true;
    let finish () =
      Obs.Control.set_enabled false;
      match fmt with
      | "json" -> print_endline (Obs.Registry.to_json Obs.Registry.default)
      | _ -> Obs.Registry.pp_text Format.std_formatter Obs.Registry.default
    in
    Fun.protect ~finally:finish f

let optimize_cmd =
  let run env workload query sql schema metrics =
    wrap (fun () ->
      with_metrics metrics (fun () ->
        let block = resolve_block env ~workload ~query ~sql ~schema in
        let cache = Cote.Stmt_cache.create () in
        ignore (Cote.Stmt_cache.lookup cache block);
        let r = O.Optimizer.optimize env block in
        (* Under --metrics, run the complete production pipeline so the
           dump covers the COTE and cache metrics too: estimate alongside
           the compile, then record the observed time. *)
        if metrics <> None then begin
          ignore (Cote.Estimator.estimate env block);
          Cote.Stmt_cache.record cache block r.O.Optimizer.elapsed
        end;
        Format.printf "query: %a@." O.Query_block.pp block;
        (match r.O.Optimizer.best with
        | None -> Format.printf "no plan found@."
        | Some p ->
          Format.printf "best plan: %a@.  cost=%.1f card=%.1f@." O.Plan.pp_compact
            p p.O.Plan.cost p.O.Plan.card);
        Format.printf
          "compile time %.4fs; joins %d; generated plans NLJN=%d MGJN=%d \
           HSJN=%d; kept %d; entries %d@."
          r.O.Optimizer.elapsed r.O.Optimizer.joins
          r.O.Optimizer.generated.O.Memo.nljn r.O.Optimizer.generated.O.Memo.mgjn
          r.O.Optimizer.generated.O.Memo.hsjn r.O.Optimizer.kept
          r.O.Optimizer.entries))
  in
  Cmd.v (Cmd.info "optimize" ~doc:"Compile a query and show the plan")
    Term.(
      ret
        (const run $ env_term $ workload_term $ query_term $ sql_term
       $ schema_term $ metrics_term))

let estimate_cmd =
  let run env workload query sql schema metrics =
    wrap (fun () ->
      with_metrics metrics (fun () ->
        let block = resolve_block env ~workload ~query ~sql ~schema in
        let model = E.Common.model_for env in
        let p = Cote.Predict.compile_time ~model env block in
        let e = p.Cote.Predict.estimate in
        Format.printf
          "estimated compile time: %.4fs@.estimated plans: NLJN=%d MGJN=%d \
           HSJN=%d (joins %d)@.estimation took %.4fs@."
          p.Cote.Predict.seconds e.Cote.Estimator.nljn e.Cote.Estimator.mgjn
          e.Cote.Estimator.hsjn e.Cote.Estimator.joins e.Cote.Estimator.elapsed))
  in
  Cmd.v (Cmd.info "estimate" ~doc:"Run the COTE on a query")
    Term.(
      ret
        (const run $ env_term $ workload_term $ query_term $ sql_term
       $ schema_term $ metrics_term))

let breakdown_cmd =
  let run env workload query sql schema metrics =
    wrap (fun () ->
      with_metrics metrics (fun () ->
        let block = resolve_block env ~workload ~query ~sql ~schema in
        let r = O.Optimizer.optimize env block in
        Format.printf "%a@." O.Instrument.pp_breakdown r.O.Optimizer.breakdown))
  in
  Cmd.v (Cmd.info "breakdown" ~doc:"Figure 2-style compile-time breakdown")
    Term.(
      ret
        (const run $ env_term $ workload_term $ query_term $ sql_term
       $ schema_term $ metrics_term))

let batch_cmd =
  let workloads_term =
    Arg.(
      value
      & opt_all string []
      & info [ "w"; "workload" ]
          ~doc:"workload to include (repeatable; default: linear, star, cycle)")
  in
  let mode_term =
    Arg.(
      value
      & opt string "compile"
      & info [ "mode" ] ~docv:"MODE" ~doc:"compile, estimate or both")
  in
  let domains_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "d"; "domains" ]
          ~doc:"domain count (default: \\$(b,QOPT_DOMAINS) or 1)")
  in
  let fingerprint_term =
    Arg.(
      value & flag
      & info [ "fingerprint" ]
          ~doc:"print the batch determinism fingerprint (MD5 over every \
                deterministic result field)")
  in
  let run env workloads mode domains fingerprint metrics =
    wrap (fun () ->
      with_metrics metrics (fun () ->
        let workloads =
          if workloads = [] then [ "linear"; "star"; "cycle" ] else workloads
        in
        let queries =
          List.concat_map
            (fun name ->
              List.map
                (fun (q : W.Workload.query) ->
                  (Printf.sprintf "%s/%s" name q.W.Workload.q_name, q.W.Workload.block))
                (E.Common.workload env name).W.Workload.queries)
            workloads
        in
        let tasks =
          List.concat_map
            (fun (name, block) ->
              match mode with
              | "compile" -> [ (name, Qopt_par.Batch.Compile block) ]
              | "estimate" -> [ (name, Qopt_par.Batch.Estimate block) ]
              | "both" ->
                [ (name, Qopt_par.Batch.Compile block);
                  (name, Qopt_par.Batch.Estimate block) ]
              | m ->
                failwith
                  (Printf.sprintf "unknown mode %S (compile|estimate|both)" m))
            queries
        in
        let domains =
          match domains with
          | Some d -> d
          | None -> Qopt_par.Batch.default_domains ()
        in
        let outcomes, wall =
          Qopt_util.Timer.time (fun () ->
              Qopt_par.Batch.run_batch ~domains env (List.map snd tasks))
        in
        let cumulative = ref 0.0 in
        List.iter2
          (fun (name, _) outcome ->
            match outcome with
            | Qopt_par.Batch.Compiled r ->
              cumulative := !cumulative +. r.O.Optimizer.elapsed;
              Format.printf
                "%-24s compile %8.4fs  joins %3d  plans %5d  entries %4d@." name
                r.O.Optimizer.elapsed r.O.Optimizer.joins r.O.Optimizer.kept
                r.O.Optimizer.entries
            | Qopt_par.Batch.Estimated e ->
              cumulative := !cumulative +. e.Cote.Estimator.elapsed;
              Format.printf
                "%-24s estimate %7.4fs  joins %3d  plans %5d  entries %4d@." name
                e.Cote.Estimator.elapsed e.Cote.Estimator.joins
                (e.Cote.Estimator.nljn + e.Cote.Estimator.mgjn
                + e.Cote.Estimator.hsjn)
                e.Cote.Estimator.entries)
          tasks outcomes;
        let n = List.length tasks in
        Format.printf
          "batch: %d tasks, %d domain(s): wall %.4fs (%.1f tasks/s), \
           cumulative task time %.4fs, speedup %.2fx@."
          n domains wall
          (float_of_int n /. wall)
          !cumulative (!cumulative /. wall);
        if fingerprint then
          Format.printf "fingerprint: %s@."
            (Digest.to_hex (Digest.string (Qopt_par.Batch.fingerprint outcomes)))))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Compile/estimate whole workloads across a domain pool")
    Term.(
      ret
        (const run $ env_term $ workloads_term $ mode_term $ domains_term
       $ fingerprint_term $ metrics_term))

let calibrate_cmd =
  let run env =
    wrap (fun () ->
        let model = E.Common.model_for env in
        Format.printf "time model (%a): %a@." O.Env.pp env Cote.Time_model.pp model)
  in
  Cmd.v (Cmd.info "calibrate" ~doc:"Fit and print the time model")
    Term.(ret (const run $ env_term))

let experiment_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let run ids =
    wrap (fun () ->
        let ids = if ids = [] then E.Registry.ids else ids in
        List.iter
          (fun id ->
            match E.Registry.find id with
            | None -> failwith (Printf.sprintf "unknown experiment %s" id)
            | Some e ->
              Format.printf "== %s: %s@." e.E.Registry.id e.E.Registry.title;
              e.E.Registry.run ())
          ids)
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run experiments by id (default: all)")
    Term.(ret (const run $ ids))

let list_cmd =
  let run env =
    wrap (fun () ->
        Format.printf "workloads:@.";
        List.iter
          (fun name ->
            let wl = E.Common.workload env name in
            Format.printf "  %-12s %d queries: %s@." name (W.Workload.size wl)
              (String.concat ", "
                 (List.map
                    (fun (q : W.Workload.query) -> q.W.Workload.q_name)
                    wl.W.Workload.queries)))
          workload_names;
        Format.printf "experiments: %s@." (String.concat ", " E.Registry.ids))
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, queries and experiments")
    Term.(ret (const run $ env_term))

let () =
  let info =
    Cmd.info "qopt" ~version:"1.0.0"
      ~doc:"Query-optimizer compilation-time estimation (SIGMOD 2003 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            optimize_cmd; estimate_cmd; breakdown_cmd; batch_cmd; calibrate_cmd;
            experiment_cmd; list_cmd;
          ]))
