lib/optimizer/cost_model.mli: Env Plan Pred Qopt_catalog Qopt_util Query_block
