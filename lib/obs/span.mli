(** Nestable wall-clock span timers.

    A span accumulates inclusive elapsed time over [time] calls.  Spans
    nest dynamically: while one span is timing, time spent in any span
    entered inside it is also attributed to the outer span's child total,
    so [self] reports exclusive time.  Nesting is tracked on a per-domain
    stack (domain-local storage), and accumulated seconds are sharded per
    domain slot ({!Shard}), so concurrent workers time the same span
    without interfering; [total]/[self]/[count] merge the shards.

    Spans created with [~always:true] record regardless of the
    {!Control.on} switch — used by the Figure-2 instrumentation, whose
    timing is part of the optimizer's own accounting, not an optional
    metric. *)

type t

val make : ?always:bool -> string -> t
(** [always] defaults to [false]. *)

val name : t -> string

val time : t -> (unit -> 'a) -> 'a
(** Runs the thunk, adding its elapsed time to the span (and to the
    enclosing span's child total).  When disabled, runs the thunk
    untimed.  Exception-safe: the nesting stack is restored and elapsed
    time recorded even if the thunk raises. *)

val total : t -> float
(** Inclusive seconds. *)

val self : t -> float
(** Exclusive seconds: [total] minus time spent in spans nested inside. *)

val count : t -> int

val add : t -> float -> unit
(** Add pre-measured seconds (no nesting bookkeeping); respects the
    [always] flag like {!time}. *)

val reset : t -> unit
