lib/optimizer/greedy.ml: Cardinality Colref Cost_model Env Float Interesting Join_method List Partition_prop Plan Pred Qopt_catalog Qopt_util Quantifier Query_block
