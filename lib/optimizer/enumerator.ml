module Bitset = Qopt_util.Bitset
module Obs = Qopt_obs

(* Process-wide enumeration metrics (no-ops unless Qopt_obs is enabled). *)
let m_subsets = Obs.Registry.counter Obs.Registry.default "enumerator.subsets"

let m_pairs = Obs.Registry.counter Obs.Registry.default "enumerator.pairs_considered"

let m_pruned = Obs.Registry.counter Obs.Registry.default "enumerator.pairs_pruned"

let m_joins = Obs.Registry.counter Obs.Registry.default "enumerator.joins_feasible"

type join_event = {
  left : Memo.entry;
  right : Memo.entry;
  result : Memo.entry;
  preds : Pred.t list;
  cartesian : bool;
  left_outer_ok : bool;
  right_outer_ok : bool;
}

type consumer = {
  on_entry : Memo.entry -> unit;
  on_join : join_event -> unit;
}

let direction_feasible ~knobs ~block ~outer ~inner =
  let quant q = Query_block.quantifier block q in
  (* Composite-inner limit / left-deep shape. *)
  let inner_size = Bitset.cardinal inner in
  (if knobs.Knobs.left_deep_only then inner_size = 1
   else
     match knobs.Knobs.max_inner with
     | None -> true
     | Some k -> inner_size <= k)
  (* Every quantifier of the outer must allow the role. *)
  && Bitset.for_all (fun q -> (quant q).Quantifier.outer_allowed) outer
  (* The outer cannot need correlation values produced by the inner. *)
  && Bitset.for_all
       (fun q -> Bitset.disjoint (quant q).Quantifier.deps inner)
       outer
  (* A null-producing side cannot be the outer against its preserved side. *)
  && List.for_all
       (fun oj ->
         not
           ((not (Bitset.disjoint outer oj.Query_block.oj_null))
           && not (Bitset.disjoint inner oj.Query_block.oj_preserved)))
       block.Query_block.outer_joins

(* A composite is valid once every correlated quantifier inside it has all
   its providers inside as well (singletons are always valid leaves). *)
let union_valid block union =
  Bitset.for_all
    (fun q ->
      Bitset.subset (Query_block.quantifier block q).Quantifier.deps union)
    union

let crossing_preds block s l =
  List.filter (fun p -> Pred.crosses p s l) block.Query_block.preds

let run ~knobs ~card_of memo consumer =
  let block = Memo.block memo in
  let stats = Memo.stats memo in
  let n = Query_block.n_quantifiers block in
  (* Leaf entries. *)
  for q = 0 to n - 1 do
    let entry, created = Memo.find_or_create memo (Bitset.singleton q) in
    if created then begin
      Obs.Counter.incr m_subsets;
      consumer.on_entry entry
    end
  done;
  for size = 2 to n do
    for lsize = 1 to size / 2 do
      let rsize = size - lsize in
      let lefts = Memo.entries_of_size memo lsize in
      let rights = Memo.entries_of_size memo rsize in
      List.iter
        (fun (s : Memo.entry) ->
          List.iter
            (fun (l : Memo.entry) ->
              Obs.Counter.incr m_pairs;
              let feasible = ref false in
              let dedup_ok =
                lsize <> rsize || Bitset.compare s.Memo.tables l.Memo.tables < 0
              in
              if dedup_ok && Bitset.disjoint s.Memo.tables l.Memo.tables then begin
                let union = Bitset.union s.Memo.tables l.Memo.tables in
                if union_valid block union then begin
                  let preds = crossing_preds block s.Memo.tables l.Memo.tables in
                  let cartesian = preds = [] in
                  let cartesian_ok =
                    (not cartesian)
                    || knobs.Knobs.allow_cartesian
                    || (knobs.Knobs.card1_cartesian
                       && ((Bitset.cardinal s.Memo.tables
                            <= knobs.Knobs.card1_max_size
                           && card_of s <= knobs.Knobs.card1_threshold)
                          || (Bitset.cardinal l.Memo.tables
                              <= knobs.Knobs.card1_max_size
                             && card_of l <= knobs.Knobs.card1_threshold)))
                  in
                  if cartesian_ok then begin
                    let left_outer_ok =
                      direction_feasible ~knobs ~block ~outer:s.Memo.tables
                        ~inner:l.Memo.tables
                    in
                    let right_outer_ok =
                      direction_feasible ~knobs ~block ~outer:l.Memo.tables
                        ~inner:s.Memo.tables
                    in
                    if left_outer_ok || right_outer_ok then begin
                      feasible := true;
                      Obs.Counter.incr m_joins;
                      let result, created = Memo.find_or_create memo union in
                      if created then begin
                        Obs.Counter.incr m_subsets;
                        consumer.on_entry result
                      end;
                      stats.Memo.joins_enumerated <-
                        stats.Memo.joins_enumerated + 1;
                      consumer.on_join
                        {
                          left = s;
                          right = l;
                          result;
                          preds;
                          cartesian;
                          left_outer_ok;
                          right_outer_ok;
                        }
                    end
                  end
                end
              end;
              if not !feasible then Obs.Counter.incr m_pruned)
            rights)
        lefts
    done
  done
