(* Runs every experiment of the paper reproduction (or a selection given as
   argv), printing the paper-shaped tables.  `bench/main.exe` wraps the same
   registry with Bechamel measurements. *)

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: ids when ids <> [] -> ids
    | _ :: _ | [] -> Qopt_experiments.Registry.ids
  in
  List.iter
    (fun id ->
      match Qopt_experiments.Registry.find id with
      | None ->
        Format.eprintf "unknown experiment %s; known: %s@." id
          (String.concat ", " Qopt_experiments.Registry.ids);
        exit 1
      | Some e ->
        Format.printf "==============================================@.";
        Format.printf "== %s: %s@." e.Qopt_experiments.Registry.id
          e.Qopt_experiments.Registry.title;
        Format.printf "==============================================@.";
        e.Qopt_experiments.Registry.run ())
    requested
